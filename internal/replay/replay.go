// Package replay implements Flux's Adaptive Replay (paper §3.2). After CRIA
// restores an app on the guest device, the pruned Selective Record log is
// replayed against the guest's own system services so they rebuild the
// app-specific state the home device's services held. Replay is *adaptive*:
// methods decorated with @replayproxy are not replayed verbatim but routed
// through a proxy that adjusts the call to the guest —
//
//   - alarmMgrSet drops alarms that already fired (trigger time at or
//     before the checkpoint instant) so the user is not re-notified;
//   - audioSetStreamVolume rescales the volume index by the home/guest
//     volume-step ratio;
//   - sensorCreateConnection obtains a fresh SensorEventConnection from the
//     guest's SensorService and injects it at the Binder handle the app
//     held before migration;
//   - sensorGetChannel opens a fresh event socket and dup2()s it onto the
//     descriptor number the app expects.
//
// Everything else replays through the restored app's own Binder handles,
// which CRIA re-bound to the guest's services at the original handle ids —
// so a recorded parcel replays bit-for-bit, including embedded handles.
package replay

import (
	"fmt"
	"sort"
	"time"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/kernel"
	"flux/internal/obs"
	"flux/internal/record"
	"flux/internal/services"
)

// Replay telemetry: entries consumed by outcome, plus a child span per
// replay-proxy invocation under the reintegration stage span.
const (
	// MetricEntries counts replayed log entries by outcome (replayed,
	// proxied, skipped_expired, skipped_missing_hw, forwarded).
	MetricEntries = "flux_replay_entries_total"
	// MetricProxyCalls counts replay-proxy invocations by proxy path.
	MetricProxyCalls = "flux_replay_proxy_calls_total"
)

func init() {
	m := obs.M()
	m.Describe(MetricEntries, "Record-log entries consumed by replay, by outcome.")
	m.Describe(MetricProxyCalls, "Replay proxy invocations, by proxy path.")
}

// Context carries everything a replay run needs about both sides.
type Context struct {
	// Pkg is the migrating app's package name.
	Pkg string
	// AppProc is the restored app's Binder state on the guest.
	AppProc *binder.Proc
	// KernProc is the restored app's kernel process on the guest.
	KernProc *kernel.Process
	// System is the guest's system_server.
	System *services.System
	// Recorder is the guest's Selective Record recorder. Proxies that
	// rebuild state outside the Binder path (the sensor proxies) append
	// the original log entries here so the guest's log stays complete
	// enough to migrate the app onward or back.
	Recorder *record.Recorder
	// CheckpointTime is the virtual instant the checkpoint was taken on the
	// home device. The alarm proxy compares trigger times against this —
	// not against "now" — so an alarm due mid-migration still fires.
	CheckpointTime time.Time
	// HomeVolumeSteps is the home device's maximum volume index.
	HomeVolumeSteps int32
	// MissingServices lists guest-absent hardware services. Calls to them
	// are skipped (counted in Stats.SkippedMissingHW); with NetworkFallback
	// they are instead marked for remote forwarding to the home device.
	MissingServices map[string]bool
	// NetworkFallback allows device access to continue over the network
	// when the guest lacks the hardware (paper §3.2, Adaptive Replay).
	NetworkFallback bool
	// Anchor is the marshalled seglog anchor from the checkpoint image.
	// When set, Replay re-serializes the entries it was handed and
	// verifies them against it before issuing a single transaction —
	// defense in depth behind cria.Restore's check, so a log mutated
	// between restore and replay is still refused.
	Anchor []byte
	// Span optionally parents the replay's telemetry spans (the migration
	// pipeline passes its reintegration stage span). Nil-safe.
	Span *obs.Span
}

// Stats summarizes one replay run.
type Stats struct {
	Replayed         int // calls re-issued verbatim
	Proxied          int // calls routed through a replay proxy
	SkippedExpired   int // alarm-style calls filtered out by time
	SkippedMissingHW int // calls to hardware the guest lacks
	Forwarded        int // calls marked for network fallback to home
}

// Total returns the number of log entries consumed.
func (s Stats) Total() int {
	return s.Replayed + s.Proxied + s.SkippedExpired + s.SkippedMissingHW + s.Forwarded
}

// Proxy adapts one recorded call to the guest device. Returning
// (skipped=true) counts the entry as time-filtered.
type Proxy func(ctx *Context, e *record.Entry, m *aidl.Method) (skipped bool, err error)

// Engine replays record logs. It is safe to reuse across migrations.
type Engine struct {
	interfaces map[string]*aidl.Interface
	rules      map[string]map[string]aidl.Rule // descriptor → method → rule
	proxies    map[string]Proxy
}

// NewEngine builds an engine aware of every decorated interface the
// services package defines, with the standard Flux proxies registered.
func NewEngine() *Engine {
	e := &Engine{
		interfaces: make(map[string]*aidl.Interface),
		rules:      make(map[string]map[string]aidl.Rule),
		proxies:    make(map[string]Proxy),
	}
	for _, itf := range []*aidl.Interface{
		services.NotificationInterface,
		services.AlarmInterface,
		services.SensorInterface,
		services.SensorConnectionInterface,
		services.AudioInterface,
		services.ActivityInterface,
		services.ClipboardInterface,
		services.WifiInterface,
		services.ConnectivityInterface,
		services.LocationInterface,
		services.PowerInterface,
		services.VibratorInterface,
		services.InputMethodInterface,
		services.InputInterface,
		services.KeyguardInterface,
		services.UiModeInterface,
		services.NsdInterface,
		services.TextServicesInterface,
		services.CountryInterface,
		services.CameraInterface,
		services.BluetoothInterface,
		services.SerialInterface,
		services.UsbInterface,
	} {
		e.RegisterInterface(itf)
	}
	e.RegisterProxy("flux.recordreplay.Proxies.alarmMgrSet", AlarmMgrSet)
	e.RegisterProxy("flux.recordreplay.Proxies.audioSetStreamVolume", AudioSetStreamVolume)
	e.RegisterProxy("flux.recordreplay.Proxies.sensorCreateConnection", SensorCreateConnection)
	e.RegisterProxy("flux.recordreplay.Proxies.sensorGetChannel", SensorGetChannel)
	return e
}

// RegisterInterface makes the engine aware of a decorated interface.
func (e *Engine) RegisterInterface(itf *aidl.Interface) {
	e.interfaces[itf.Name] = itf
	rules := make(map[string]aidl.Rule)
	for _, r := range aidl.Rules(itf) {
		rules[r.Method] = r
	}
	e.rules[itf.Name] = rules
}

// RegisterProxy installs a proxy under its @replayproxy path.
func (e *Engine) RegisterProxy(path string, p Proxy) { e.proxies[path] = p }

// replyDependentProxies names the standard proxies that reconstruct state
// from the recorded *reply* parcel (the sensor proxies re-inject the
// handle/fd the home device handed back). fluxvet uses this to reject
// @replayproxy decorations on oneway methods, which record no reply.
var replyDependentProxies = map[string]bool{
	"flux.recordreplay.Proxies.sensorCreateConnection": true,
	"flux.recordreplay.Proxies.sensorGetChannel":       true,
}

// ProxyPaths returns every registered @replayproxy path, sorted — the
// proxy registry fluxvet resolves decorations against.
func (e *Engine) ProxyPaths() []string {
	out := make([]string, 0, len(e.proxies))
	for path := range e.proxies {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// ProxyInfo reports whether path resolves in the registry and whether the
// proxy replays from the recorded reply parcel.
func (e *Engine) ProxyInfo(path string) (registered, needsReply bool) {
	_, ok := e.proxies[path]
	return ok, replyDependentProxies[path]
}

// Replay re-applies a record log to the guest device in sequence order.
func (e *Engine) Replay(ctx *Context, entries []*record.Entry) (Stats, error) {
	var stats Stats
	if len(ctx.Anchor) > 0 {
		if err := record.VerifyEntriesAnchor(entries, ctx.Anchor); err != nil {
			return stats, fmt.Errorf("replay: refusing unverified log: %w", err)
		}
	}
	telemetry := obs.Enabled()
	sp := ctx.Span.Child("replay.run", obs.Int64("entries", int64(len(entries))))
	defer func() {
		sp.Attr(
			obs.Int64("replayed", int64(stats.Replayed)),
			obs.Int64("proxied", int64(stats.Proxied)),
			obs.Int64("skipped_expired", int64(stats.SkippedExpired)),
			obs.Int64("skipped_missing_hw", int64(stats.SkippedMissingHW)),
			obs.Int64("forwarded", int64(stats.Forwarded)),
		).End()
		if telemetry {
			m := obs.M()
			for _, o := range []struct {
				outcome string
				n       int
			}{
				{"replayed", stats.Replayed},
				{"proxied", stats.Proxied},
				{"skipped_expired", stats.SkippedExpired},
				{"skipped_missing_hw", stats.SkippedMissingHW},
				{"forwarded", stats.Forwarded},
			} {
				if o.n > 0 {
					m.Counter(MetricEntries, "outcome", o.outcome).Add(uint64(o.n))
				}
			}
		}
	}()
	for _, entry := range entries {
		itf, ok := e.interfaces[entry.Interface]
		if !ok {
			return stats, fmt.Errorf("replay: unknown interface %s in log entry %d", entry.Interface, entry.Seq)
		}
		m := itf.Method(entry.Method)
		if m == nil {
			return stats, fmt.Errorf("replay: %s has no method %s (entry %d)", entry.Interface, entry.Method, entry.Seq)
		}
		if ctx.MissingServices[entry.Service] {
			if ctx.NetworkFallback {
				stats.Forwarded++
			} else {
				stats.SkippedMissingHW++
			}
			continue
		}
		rule := e.rules[entry.Interface][entry.Method]
		if rule.ReplayProxy != "" {
			proxy, ok := e.proxies[rule.ReplayProxy]
			if !ok {
				return stats, fmt.Errorf("replay: no proxy registered for %s", rule.ReplayProxy)
			}
			psp := sp.Child("replay.proxy",
				obs.String("proxy", rule.ReplayProxy),
				obs.String("method", entry.Method),
				obs.Int64("seq", int64(entry.Seq)),
			)
			skipped, err := proxy(ctx, entry, m)
			if telemetry {
				obs.M().Counter(MetricProxyCalls, "proxy", rule.ReplayProxy).Inc()
			}
			if err != nil {
				psp.Attr(obs.String("error", err.Error())).End()
				return stats, fmt.Errorf("replay: proxy %s on entry %d: %w", rule.ReplayProxy, entry.Seq, err)
			}
			psp.Attr(obs.Bool("skipped", skipped)).End()
			if skipped {
				stats.SkippedExpired++
			} else {
				stats.Proxied++
			}
			continue
		}
		data, err := entry.Parcel()
		if err != nil {
			return stats, fmt.Errorf("replay: entry %d parcel: %w", entry.Seq, err)
		}
		if _, err := ctx.AppProc.Transact(entry.Handle, entry.Code, data); err != nil {
			return stats, fmt.Errorf("replay: entry %d %s.%s: %w", entry.Seq, entry.Interface, entry.Method, err)
		}
		stats.Replayed++
	}
	return stats, nil
}

// AlarmMgrSet is the paper's Figure 10 proxy: verify the alarm is still in
// the future relative to the checkpoint instant, then re-issue the set.
func AlarmMgrSet(ctx *Context, e *record.Entry, m *aidl.Method) (bool, error) {
	data, err := e.Parcel()
	if err != nil {
		return false, err
	}
	cp := data.Clone()
	cp.MustInt32() // type
	triggerAt := cp.MustInt64()
	if triggerAt <= ctx.CheckpointTime.UnixMilli() {
		return true, nil // already fired on the home device
	}
	_, err = ctx.AppProc.Transact(e.Handle, e.Code, data)
	return false, err
}

// AudioSetStreamVolume rescales volume indexes by the home/guest step
// ratio, for both setStreamVolume(stream,index,flags) and
// adjustStreamVolume(stream,direction,flags).
func AudioSetStreamVolume(ctx *Context, e *record.Entry, m *aidl.Method) (bool, error) {
	data, err := e.Parcel()
	if err != nil {
		return false, err
	}
	stream := data.MustInt32()
	val := data.MustInt32()
	flags := data.MustInt32()
	if m.Name == "setStreamVolume" && ctx.HomeVolumeSteps > 0 {
		guestSteps := ctx.System.Audio.MaxSteps()
		val = int32(float64(val)*float64(guestSteps)/float64(ctx.HomeVolumeSteps) + 0.5)
	}
	out, err := aidl.MarshalCallArgs(m, stream, val, flags)
	if err != nil {
		return false, err
	}
	_, err = ctx.AppProc.Transact(e.Handle, e.Code, out)
	return false, err
}

// SensorCreateConnection re-creates a SensorEventConnection on the guest's
// SensorService and injects it at the handle the app held before migration
// (taken from the recorded reply parcel).
func SensorCreateConnection(ctx *Context, e *record.Entry, m *aidl.Method) (bool, error) {
	reply, err := e.ReplyParcel()
	if err != nil {
		return false, err
	}
	if reply == nil {
		return false, fmt.Errorf("replay: createSensorEventConnection entry %d has no recorded reply", e.Seq)
	}
	origHandle := reply.MustHandle()
	conn, err := ctx.System.Sensors.NewConnection(ctx.Pkg)
	if err != nil {
		return false, err
	}
	if err := ctx.AppProc.InjectRef(origHandle, conn.Node()); err != nil {
		return false, fmt.Errorf("replay: injecting connection at handle %d: %w", origHandle, err)
	}
	appendOriginal(ctx, e)
	return false, nil
}

// appendOriginal copies a recorded entry into the guest's log so the next
// migration can replay it again. Proxies that reconstruct state outside the
// normal Binder path use this; verbatim replays are re-recorded by the
// guest's own interposer.
func appendOriginal(ctx *Context, e *record.Entry) {
	if ctx.Recorder == nil {
		return
	}
	cp := *e
	cp.Data = append([]byte(nil), e.Data...)
	if e.Reply != nil {
		cp.Reply = append([]byte(nil), e.Reply...)
	}
	ctx.Recorder.Log().Append(&cp)
}

// SensorGetChannel re-opens the connection's event socket and dup2()s it
// onto the descriptor number the app held before migration.
func SensorGetChannel(ctx *Context, e *record.Entry, m *aidl.Method) (bool, error) {
	reply, err := e.ReplyParcel()
	if err != nil {
		return false, err
	}
	if reply == nil {
		return false, fmt.Errorf("replay: getSensorChannel entry %d has no recorded reply", e.Seq)
	}
	origFD := reply.MustFD()
	// The connection node sits at the entry's recorded handle (the create
	// proxy put it back there). Call through Binder so the guest service
	// opens a fresh channel in the app's fd table. Recording pauses so the
	// guest log captures the ORIGINAL fd (which the dup2 below makes true
	// again), not the transient fresh one.
	if ctx.Recorder != nil {
		ctx.Recorder.Pause(ctx.Pkg)
		defer ctx.Recorder.Resume(ctx.Pkg)
	}
	fresh, err := ctx.AppProc.Transact(e.Handle, e.Code, binder.NewParcel())
	if err != nil {
		return false, err
	}
	newFD := fresh.MustFD()
	if newFD == origFD {
		return false, nil
	}
	if err := ctx.KernProc.Dup2(newFD, origFD); err != nil {
		return false, err
	}
	// Tell the connection where its channel ended up.
	node, err := ctx.AppProc.Node(e.Handle)
	if err == nil {
		for _, c := range ctx.System.Sensors.Connections(ctx.Pkg) {
			if c.Node() == node {
				c.SetChannelFD(origFD)
			}
		}
	}
	appendOriginal(ctx, e)
	return false, nil
}
