package vet

import (
	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/record"
)

// refModel re-implements Selective Record's drop semantics as a flat scan
// with per-call parcel re-parsing — the PR-1 reference model the sharded,
// index-accelerated recorder is regression-tested against. Layer 2 uses it
// the other way around: given a log that *claims* to be the surviving set,
// the model predicts which of those survivors the rules would have pruned.
// Any prediction is drift between the persisted log and the specs.
//
// Semantics mirrored from record.Recorder.applyDrops (keep in sync):
//   - a previous entry of a drop-target method matches if, for any one
//     @if/@elif signature, every named argument is equal between the
//     previous call and the triggering call; no signatures means match
//     unconditionally;
//   - `this` in the drop list makes the method its own target, and
//     additionally suppresses the triggering call when the match removed
//     an entry of a *different* method (pair annihilation).
type refModel struct {
	itfs  map[string]*aidl.Interface
	rules map[string]map[string]aidl.Rule // descriptor → method → rule
}

func newRefModel(itfs map[string]*aidl.Interface) *refModel {
	m := &refModel{itfs: itfs, rules: make(map[string]map[string]aidl.Rule)}
	for desc, itf := range itfs {
		rules := make(map[string]aidl.Rule)
		for _, r := range aidl.Rules(itf) {
			rules[r.Method] = r
		}
		m.rules[desc] = rules
	}
	return m
}

// rule returns the method's compiled record rule, if decorated.
func (m *refModel) rule(e *record.Entry) (aidl.Rule, bool) {
	r, ok := m.rules[e.Interface][e.Method]
	return r, ok
}

// predict evaluates entry e's drop clauses against the prior entries.
// It returns the indexes into prior that the rules would have pruned
// before e was appended, plus whether e itself would have been suppressed
// (drop-this annihilation). Malformed parcels match nothing, exactly as in
// the recorder.
func (m *refModel) predict(e *record.Entry, prior []*record.Entry) (pruned []int, suppressed bool) {
	rule, ok := m.rule(e)
	if !ok || len(rule.DropMethods) == 0 {
		return nil, false
	}
	itf := m.itfs[e.Interface]
	em := itf.Method(e.Method)
	if em == nil {
		return nil, false
	}
	targets := map[string]bool{}
	for _, name := range rule.DropMethods {
		if name == "this" {
			name = e.Method
		}
		targets[name] = true
	}
	data, err := binder.UnmarshalParcel(e.Data)
	if err != nil {
		return nil, false
	}
	// The triggering call's signature values, re-parsed per the reference
	// semantics.
	sigVals := make([]map[string]string, len(rule.Signatures))
	for i, sig := range rule.Signatures {
		vals := make(map[string]string, len(sig))
		for _, arg := range sig {
			v, err := aidl.ArgString(em, data, arg)
			if err != nil {
				return nil, false // malformed: record nothing, drop nothing
			}
			vals[arg] = v
		}
		sigVals[i] = vals
	}
	droppedOther := false
	for idx, p := range prior {
		if p.Interface != e.Interface || !targets[p.Method] {
			continue
		}
		pm := itf.Method(p.Method)
		if pm == nil {
			continue
		}
		if len(rule.Signatures) == 0 {
			pruned = append(pruned, idx)
			if p.Method != e.Method {
				droppedOther = true
			}
			continue
		}
		pdata, err := binder.UnmarshalParcel(p.Data)
		if err != nil {
			continue // malformed previous entry matches nothing
		}
		for i, sig := range rule.Signatures {
			match := true
			for _, arg := range sig {
				pv, err := aidl.ArgString(pm, pdata, arg)
				if err != nil || pv != sigVals[i][arg] {
					match = false
					break
				}
			}
			if match {
				pruned = append(pruned, idx)
				if p.Method != e.Method {
					droppedOther = true
				}
				break
			}
		}
	}
	return pruned, rule.DropsSelf() && droppedOther
}
