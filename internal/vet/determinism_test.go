package vet

import (
	"strings"
	"testing"
)

// TestTaintLocalHelperChain seeds the canonical taint shape: a helper
// that reads the wall clock, called from a deterministic output path.
// The wallclock check pins the source; determinism-taint pins the call
// site with the witness chain.
func TestTaintLocalHelperChain(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/experiments/r.go": `package experiments

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // the source
}

func Report() int64 {
	return stamp() // the leak into the deterministic path
}
`,
	})
	fs := runFixture(t, SourceConfig{
		Root:             root,
		VirtualClockDirs: []string{"internal/experiments"},
		TaintDirs:        []string{"internal/experiments"},
	})
	wall := findAll(fs, CheckWallClock)
	if len(wall) != 1 || wall[0].Line != 6 || wall[0].Col != 9 {
		t.Fatalf("want wallclock at r.go:6:9, got %v", fs)
	}
	taint := findAll(fs, CheckDeterminismTaint)
	if len(taint) != 1 || taint[0].Line != 10 || taint[0].Col != 9 {
		t.Fatalf("want determinism-taint at r.go:10:9, got %v", fs)
	}
	if !strings.Contains(taint[0].Message, "stamp → time.Now") {
		t.Fatalf("witness chain missing from message: %s", taint[0].Message)
	}
}

// TestTaintCrossPackage seeds taint across a package boundary: the
// source lives in a package the deterministic one imports, so the
// finding can only come from an exported fact. The dependency is
// lexically AFTER its importer (zkernel > amigr), so the test also pins
// the driver's topological unit order — a lexical order would visit
// amigr first and see no fact.
func TestTaintCrossPackage(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/zkernel/clock.go": `package zkernel

import "time"

// Stamp reads the host clock.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/amigr/plan.go": `package amigr

import "flux/internal/zkernel"

func PlanID() int64 {
	return zkernel.Stamp() // tainted via the imported fact
}
`,
	})
	fs := runFixture(t, SourceConfig{
		Root:             root,
		VirtualClockDirs: []string{"internal/zkernel", "internal/amigr"},
		TaintDirs:        []string{"internal/amigr"},
	})
	taint := findAll(fs, CheckDeterminismTaint)
	if len(taint) != 1 || !strings.HasSuffix(taint[0].File, "plan.go") ||
		taint[0].Line != 6 || taint[0].Col != 9 {
		t.Fatalf("want determinism-taint at plan.go:6:9, got %v", fs)
	}
	if !strings.Contains(taint[0].Message, "zkernel.Stamp") ||
		!strings.Contains(taint[0].Message, "time.Now") {
		t.Fatalf("cross-package witness missing: %s", taint[0].Message)
	}
}

// TestTaintUnseededRand: package-level math/rand draws are flagged at
// the exact position; a locally seeded *rand.Rand is deterministic and
// stays clean.
func TestTaintUnseededRand(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/jitter.go": `package netsim

import "math/rand"

func Jitter() int {
	return rand.Intn(5) // global source: nondeterministic
}

func Seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(5)
}
`,
	})
	fs := runFixture(t, SourceConfig{
		Root:             root,
		VirtualClockDirs: []string{"internal/netsim"},
		TaintDirs:        []string{"internal/netsim"},
	})
	taint := findAll(fs, CheckDeterminismTaint)
	if len(taint) != 1 || taint[0].Line != 6 || taint[0].Col != 9 {
		t.Fatalf("want exactly the global rand.Intn at jitter.go:6:9, got %v", fs)
	}
}

// TestTaintAllowRoundTrip: annotating the leaking call site suppresses
// the finding and the directive does not come back as stale.
func TestTaintAllowRoundTrip(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/experiments/r.go": `package experiments

import "time"

//fluxvet:allow wallclock — fixture source
func stamp() int64 { return time.Now().UnixNano() }

func Report() int64 {
	return stamp()
}
`,
	})
	fs := runFixture(t, SourceConfig{
		Root:             root,
		VirtualClockDirs: []string{"internal/experiments"},
		TaintDirs:        []string{"internal/experiments"},
	})
	// The annotated source is declared intentional: it is suppressed AND
	// it does not taint its callers, so the tree is fully clean — the
	// directive must not be reported stale.
	if len(fs) != 0 {
		t.Fatalf("allowed source should suppress and not taint, got %v", fs)
	}
}

// TestTaintAllowedCallSite: annotating the call site (not the source)
// keeps the source finding but silences the taint finding.
func TestTaintAllowedCallSite(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/experiments/r.go": `package experiments

import "time"

func stamp() int64 { return time.Now().UnixNano() }

func Report() int64 {
	return stamp() //fluxvet:allow determinism-taint — fixture call site
}
`,
	})
	fs := runFixture(t, SourceConfig{
		Root:             root,
		VirtualClockDirs: []string{"internal/experiments"},
		TaintDirs:        []string{"internal/experiments"},
	})
	if got := findAll(fs, CheckDeterminismTaint); len(got) != 0 {
		t.Fatalf("annotated call site should be suppressed, got %v", got)
	}
	if got := findAll(fs, CheckWallClock); len(got) != 1 {
		t.Fatalf("the source itself still fires, got %v", fs)
	}
	if got := findAll(fs, CheckStaleAllow); len(got) != 0 {
		t.Fatalf("directive was used; must not be stale: %v", got)
	}
}
