package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The lock-order pass extracts mutex-acquisition orders across the
// lock-heavy packages (the PR-9 ordered all-shard sweep in
// internal/record, seglog.File, the obs shards) and flags any two code
// paths that acquire the same pair of locks in opposite orders — the
// classic AB/BA deadlock shape, statically.
//
// A lock is identified by the struct type that carries it plus the field
// path ("record.Log.shardMu", "seglog.Log.mu"), so every instance of a
// type shares one identity; acquiring many instances of the *same* lock
// identity (the sorted all-shard sweep) is deliberately not an edge —
// instances are indistinguishable statically, and the sweep's sort is
// exactly how that pattern is made safe. Edges are gathered
// intraprocedurally from nested Lock calls and interprocedurally from
// calls made while a lock is held: each function exports the set of
// locks it (transitively) acquires as a fact, so a caller in another
// package holding lock A that calls into a function acquiring lock B
// contributes an A→B edge without seeing the callee's source. After all
// units are visited, any edge whose reverse also exists becomes a
// finding at every site taking the conflicting order.

// lockEdge is an ordered pair of lock identities: from was held when to
// was acquired.
type lockEdge struct{ from, to string }

// lockFact is the exported per-function fact: the sorted set of lock
// identities the function acquires, directly or transitively.
type lockFact []string

// lockCall is one non-mutex call site: the resolved callee (local name
// or cross-package path+name) plus the locks held at the call.
type lockCall struct {
	local  string
	extPkg string
	extFn  string
	held   []string
	pos    token.Position
}

func lockOrderPass(pc *passCtx) []Finding {
	edges := map[lockEdge]map[string]token.Position{} // edge → "file:line:col" → pos
	addEdge := func(from, to string, pos token.Position) {
		if from == to {
			return // same identity: the ordered-sweep idiom
		}
		e := lockEdge{from, to}
		if edges[e] == nil {
			edges[e] = map[string]token.Position{}
		}
		edges[e][pos.String()] = pos
	}

	for _, u := range pc.units {
		if !pc.report(u) {
			continue
		}
		p := u.pkg
		acquires := map[string]map[string]bool{} // func key → direct lock set
		callGraph := map[string][]lockCall{}     // func key → outgoing calls
		var underLock []lockCall                 // calls made while holding locks

		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := funcKey(fd)
				if acquires[key] == nil {
					acquires[key] = map[string]bool{}
				}
				w := &lockWalker{
					u: u, acquires: acquires[key],
					addEdge: addEdge,
					call: func(c lockCall) {
						callGraph[key] = append(callGraph[key], c)
						if len(c.held) > 0 {
							underLock = append(underLock, c)
						}
					},
				}
				w.walkStmts(fd.Body.List, map[string]int{})
			}
		}

		// Transitive acquire sets: local fixpoint plus imported facts.
		for {
			changed := false
			for fn, calls := range callGraph {
				for _, c := range calls {
					var add []string
					switch {
					case c.local != "":
						for l := range acquires[c.local] {
							add = append(add, l)
						}
					case c.extPkg != "":
						if v, ok := pc.facts.Import(c.extPkg, c.extFn); ok {
							add = v.(lockFact)
						}
					}
					for _, l := range add {
						if !acquires[fn][l] {
							acquires[fn][l] = true
							changed = true
						}
					}
				}
			}
			if !changed {
				break
			}
		}
		for fn, set := range acquires {
			if len(set) == 0 {
				continue
			}
			fact := make(lockFact, 0, len(set))
			for l := range set {
				fact = append(fact, l)
			}
			sort.Strings(fact)
			pc.facts.Export(u.path, fn, fact)
		}

		// Interprocedural edges: a call made under lock H orders H
		// before everything the callee acquires.
		for _, c := range underLock {
			var callee map[string]bool
			switch {
			case c.local != "":
				callee = acquires[c.local]
			case c.extPkg != "":
				if v, ok := pc.facts.Import(c.extPkg, c.extFn); ok {
					callee = map[string]bool{}
					for _, l := range v.(lockFact) {
						callee[l] = true
					}
				}
			}
			for to := range callee {
				for _, h := range c.held {
					addEdge(h, to, c.pos)
				}
			}
		}
	}

	// Reconcile: an edge whose reverse exists is a conflicting order.
	var out []Finding
	for e, sites := range edges {
		rev, ok := edges[lockEdge{e.to, e.from}]
		if !ok {
			continue
		}
		revPos := firstPosition(rev)
		for _, pos := range sortedPositions(sites) {
			out = append(out, Finding{
				Check: CheckLockOrder, Severity: Error,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s acquired while holding %s, but the opposite order is taken at %s — a deadlock under concurrency; pick one order or annotate `%s lock-order — <reason>`",
					e.to, e.from, revPos, AllowDirective),
			})
		}
	}
	return out
}

func sortedPositions(m map[string]token.Position) []token.Position {
	out := make([]token.Position, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

func firstPosition(m map[string]token.Position) string {
	ps := sortedPositions(m)
	if len(ps) == 0 {
		return "?"
	}
	return fmt.Sprintf("%s:%d:%d", ps[0].Filename, ps[0].Line, ps[0].Column)
}

// lockWalker walks one function body in statement order, tracking the
// multiset of held lock identities. Branch bodies run on a copy of the
// held set (a branch that locks and unlocks internally leaves the parent
// state untouched); deferred Unlocks keep the lock held to function
// exit, which is exactly the ordering-relevant interpretation.
type lockWalker struct {
	u        *unit
	acquires map[string]bool
	addEdge  func(from, to string, pos token.Position)
	call     func(c lockCall)
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held map[string]int) {
	for _, stmt := range list {
		w.walkStmt(stmt, held)
	}
}

func cloneHeld(held map[string]int) map[string]int {
	cp := make(map[string]int, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]int) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.mutexOp(call, held, false) {
				return
			}
		}
		w.scanCalls(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock(): held to function exit — no state change.
		if w.isUnlock(s.Call) {
			return
		}
		w.scanCalls(s.Call, held)
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanCalls(s.Cond, held)
		w.walkStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanCalls(s.Cond, held)
		}
		// A lock taken inside the body is held across iterations as far
		// as ordering goes — walk the body on the live set so a Lock in
		// iteration i orders before a Lock in iteration i+1, then
		// restore (conservative: loops usually balance).
		w.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		w.scanCalls(s.X, held)
		w.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's holds.
		w.scanCalls(s.Call, map[string]int{})
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	default:
		w.scanCalls(stmt, held)
	}
}

// mutexOp handles x.Lock()/RLock()/Unlock()/RUnlock() on a sync mutex;
// reports whether the call was one.
func (w *lockWalker) mutexOp(call *ast.CallExpr, held map[string]int, deferClose bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		key := lockKeyOf(w.u.pkg, sel.X)
		if key == "" {
			return false
		}
		pos := w.u.pkg.fset.Position(call.Pos())
		for h, n := range held {
			if n > 0 {
				w.addEdge(h, key, pos)
			}
		}
		held[key]++
		w.acquires[key] = true
		return true
	case "Unlock", "RUnlock":
		key := lockKeyOf(w.u.pkg, sel.X)
		if key == "" {
			return false
		}
		if held[key] > 0 {
			held[key]--
		}
		return true
	}
	return false
}

func (w *lockWalker) isUnlock(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
		return false
	}
	return lockKeyOf(w.u.pkg, sel.X) != ""
}

// scanCalls records non-mutex calls (for the call graph and held-lock
// interprocedural edges) inside an arbitrary expression or statement.
// Function literals get a fresh empty held set: their bodies execute in
// a different dynamic context.
func (w *lockWalker) scanCalls(n ast.Node, held map[string]int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			w.walkStmts(e.Body.List, map[string]int{})
			return false
		case *ast.CallExpr:
			if w.mutexOp(e, held, false) {
				return false
			}
			local, extPkg, extFn := resolveCallee(w.u, e)
			if local == "" && extPkg == "" {
				return true
			}
			var snapshot []string
			for h, c := range held {
				if c > 0 {
					snapshot = append(snapshot, h)
				}
			}
			sort.Strings(snapshot)
			w.call(lockCall{local, extPkg, extFn, snapshot, w.u.pkg.fset.Position(e.Pos())})
		}
		return true
	})
}

// lockKeyOf names the lock identity of a mutex expression: the named
// struct type carrying the mutex plus the field name
// ("record.Log.shardMu"), or "pkg.var" for a package-level mutex.
// Returns "" when the expression is not provably a sync.(RW)Mutex or
// the containing type cannot be resolved (locals, cross-package stubs).
func lockKeyOf(p *sourcePkg, x ast.Expr) string {
	tv, ok := p.info.Types[x]
	if !ok || !isSyncMutex(tv.Type) {
		return ""
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		ct, ok := p.info.Types[e.X]
		if !ok || ct.Type == nil {
			return ""
		}
		t := ct.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		pkg := p.name
		if named.Obj().Pkg() != nil {
			pkg = named.Obj().Pkg().Name()
		}
		return pkg + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := p.info.Uses[e]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + e.Name
		}
	}
	return ""
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// resolveCallee classifies a call as package-local ("Fn"/"Type.Method")
// or module-internal cross-package (path, name). Anything else — stdlib,
// builtins, unresolvable — returns zeroes.
func resolveCallee(u *unit, call *ast.CallExpr) (local, extPkg, extFn string) {
	p := u.pkg
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := p.info.Uses[fun].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg() == p.typesPkg && fn.Signature().Recv() == nil {
			return fn.Name(), "", ""
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.info.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if u.imports[path] {
					return "", path, fun.Sel.Name
				}
				return "", "", ""
			}
		}
		if c, ok := methodCall(p, fun, token.Position{}); ok {
			return c.local, "", ""
		}
	}
	return "", "", ""
}
