package vet

import (
	"strings"
	"testing"

	"flux/internal/aidl"
)

// analyze runs AnalyzeSpecs over one parsed interface with no proxy
// resolver.
func analyze(t *testing.T, src string) []Finding {
	t.Helper()
	itf, err := aidl.Parse(src)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return AnalyzeSpecs([]SpecSource{{Service: "svc", Itf: itf}}, SpecConfig{})
}

// findAll returns the findings carrying the given check name.
func findAll(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// wantOne asserts exactly one finding of the check fires, at the given
// source position, and returns it.
func wantOne(t *testing.T, fs []Finding, check string, line, col int) Finding {
	t.Helper()
	got := findAll(fs, check)
	if len(got) != 1 {
		t.Fatalf("want exactly 1 %s finding, got %d: %v", check, len(got), fs)
	}
	f := got[0]
	if f.Line != line || f.Col != col {
		t.Fatalf("%s fired at %d:%d, want %d:%d (%s)", check, f.Line, f.Col, line, col, f.Message)
	}
	return f
}

// Seeded mutations: each spec below injects exactly one decoration bug
// and the test asserts the corresponding check fires at the precise
// position of the offending token.

func TestSpecNoRecord(t *testing.T) {
	fs := analyze(t, "interface I {\n\tvoid mutate(int x);\n\tint query();\n}\n")
	f := wantOne(t, fs, "no-record", 2, 7) // position of `mutate`
	if f.Severity != Warn || f.Method != "mutate" {
		t.Fatalf("no-record = %+v", f)
	}
	// The int-returning query is not flagged.
	for _, f := range fs {
		if f.Method == "query" {
			t.Fatalf("query wrongly flagged: %+v", f)
		}
	}
}

func TestSpecSelfShadowLiteralName(t *testing.T) {
	// Line 2: `@record { @drop cancel; }` — col of `cancel` is 18.
	fs := analyze(t, "interface I {\n\t@record { @drop cancel; }\n\tvoid cancel(int id);\n}\n")
	f := wantOne(t, fs, "self-shadow", 2, 18)
	if !strings.Contains(f.Message, "`this`") {
		t.Fatalf("message should point at the this keyword: %s", f.Message)
	}
}

func TestSpecSelfShadowDuplicateTarget(t *testing.T) {
	fs := analyze(t, "interface I {\n\t@record { @drop this, other, other; }\n\tvoid set(int id);\n\t@record\n\tvoid other(int id);\n}\n")
	f := wantOne(t, fs, "self-shadow", 2, 31) // second `other`
	if !strings.Contains(f.Message, "more than once") {
		t.Fatalf("message = %s", f.Message)
	}
}

func TestSpecDeadDrop(t *testing.T) {
	// `other` exists but is never @record'ed: the drop rule can never
	// match a log entry.
	fs := analyze(t, "interface I {\n\t@record { @drop other; }\n\tvoid set(int id);\n\tvoid other(int id);\n}\n")
	f := wantOne(t, fs, "dead-drop", 2, 18)
	if f.Method != "set" || !strings.Contains(f.Message, "other") {
		t.Fatalf("dead-drop = %+v", f)
	}
}

func TestSpecGuardTypeParcelable(t *testing.T) {
	// @if over a parcelable argument: ArgString comparison is lossy.
	fs := analyze(t, "interface I {\n\t@record { @drop this; @if intent; }\n\tvoid send(in Intent intent);\n}\n")
	f := wantOne(t, fs, "guard-type", 2, 28) // `intent` in the @if
	if !strings.Contains(f.Message, "parcelable") {
		t.Fatalf("guard-type = %s", f.Message)
	}
}

func TestSpecGuardTypeBinderAndFD(t *testing.T) {
	for _, tc := range []struct{ typ, frag string }{
		{"IBinder", "IBinder"},
		{"ParcelFileDescriptor", "ParcelFileDescriptor"},
	} {
		fs := analyze(t, "interface I {\n\t@record { @drop this; @if tok; }\n\tvoid send("+tc.typ+" tok);\n}\n")
		got := findAll(fs, "guard-type")
		if len(got) != 1 || !strings.Contains(got[0].Message, tc.frag) {
			t.Fatalf("%s: guard-type findings = %v", tc.typ, got)
		}
	}
	// Comparable guard types stay clean.
	for _, typ := range []string{"int", "long", "boolean", "String"} {
		fs := analyze(t, "interface I {\n\t@record { @drop this; @if v; }\n\tvoid send("+typ+" v);\n}\n")
		if got := findAll(fs, "guard-type"); len(got) != 0 {
			t.Fatalf("%s wrongly flagged: %v", typ, got)
		}
	}
}

func TestSpecGuardTypeMismatchAcrossTarget(t *testing.T) {
	// `id` is int on the decorated method but long on the drop target:
	// the canonical renderings ("i:…" vs "l:…") never compare equal.
	fs := analyze(t, "interface I {\n\t@record\n\tvoid add(long id);\n\t@record { @drop add; @if id; }\n\tvoid remove(int id);\n}\n")
	f := wantOne(t, fs, "guard-type-mismatch", 4, 27)
	if !strings.Contains(f.Message, "add") {
		t.Fatalf("message = %s", f.Message)
	}
}

func TestSpecOrphanGuard(t *testing.T) {
	fs := analyze(t, "interface I {\n\t@record { @if id; }\n\tvoid set(int id);\n}\n")
	f := wantOne(t, fs, "orphan-guard", 2, 2) // the @ of @record
	if f.Method != "set" {
		t.Fatalf("orphan-guard = %+v", f)
	}
}

func TestSpecDropCycleWithoutThis(t *testing.T) {
	// enable/disable drop each other but neither drops `this`: state
	// shadows in call-order-dependent ways instead of annihilating.
	fs := analyze(t, `interface I {
	@record { @drop disable; }
	void enable(int id);
	@record { @drop enable; }
	void disable(int id);
}
`)
	got := findAll(fs, "drop-cycle")
	if len(got) != 1 {
		t.Fatalf("want 1 drop-cycle finding, got %v", fs)
	}
	// The pair-annihilation idiom (this on every edge) is clean.
	fs = analyze(t, `interface I {
	@record { @drop this, disable; }
	void enable(int id);
	@record { @drop this, enable; }
	void disable(int id);
}
`)
	if got := findAll(fs, "drop-cycle"); len(got) != 0 {
		t.Fatalf("annihilation idiom wrongly flagged: %v", got)
	}
}

func TestSpecOnewayOutParam(t *testing.T) {
	fs := analyze(t, "interface I {\n\t@record\n\toneway void fire(int id, out Bundle result);\n}\n")
	f := wantOne(t, fs, "oneway-conflict", 3, 38) // `result`
	if !strings.Contains(f.Message, "result") {
		t.Fatalf("oneway-conflict = %s", f.Message)
	}
}

func TestSpecProxyChecks(t *testing.T) {
	src := "interface I {\n\t@record { @drop this; @replayproxy flux.recordreplay.Proxies.ghost; }\n\toneway void fire(int id);\n}\n"
	itf := aidl.MustParse(src)
	specs := []SpecSource{{Service: "svc", Itf: itf}}

	// Unregistered path.
	fs := AnalyzeSpecs(specs, SpecConfig{Proxies: func(string) ProxyInfo { return ProxyInfo{} }})
	f := wantOne(t, fs, "proxy-unresolved", 2, 37)
	if !strings.Contains(f.Message, "ghost") {
		t.Fatalf("proxy-unresolved = %s", f.Message)
	}

	// Registered but reply-dependent on a oneway method.
	fs = AnalyzeSpecs(specs, SpecConfig{Proxies: func(string) ProxyInfo {
		return ProxyInfo{Registered: true, NeedsReply: true}
	}})
	if got := findAll(fs, "oneway-conflict"); len(got) != 1 {
		t.Fatalf("want oneway-conflict for reply-dependent proxy, got %v", fs)
	}

	// Registered, reply-free: clean.
	fs = AnalyzeSpecs(specs, SpecConfig{Proxies: func(string) ProxyInfo {
		return ProxyInfo{Registered: true}
	}})
	for _, check := range []string{"proxy-unresolved", "oneway-conflict"} {
		if got := findAll(fs, check); len(got) != 0 {
			t.Fatalf("%s wrongly fired: %v", check, got)
		}
	}
	// No resolver: proxy checks disabled entirely.
	fs = AnalyzeSpecs(specs, SpecConfig{})
	if got := findAll(fs, "proxy-unresolved"); len(got) != 0 {
		t.Fatalf("nil resolver should disable proxy checks: %v", got)
	}
}

func TestSpecUnknownTargetsProgrammatic(t *testing.T) {
	// The parser rejects unknown @drop/@if names at parse time, so these
	// only arise in programmatically built specs — which vet must still
	// defend against.
	itf := &aidl.Interface{Name: "I", Methods: []*aidl.Method{
		{
			Name: "set", Returns: aidl.TypeVoid, Code: 1,
			Params: []aidl.Param{{Name: "id", Type: aidl.TypeInt, In: true}},
			Record: &aidl.RecordSpec{
				DropMethods: []string{"nosuch"},
				Signatures:  [][]string{{"ghostArg"}},
			},
		},
	}}
	fs := AnalyzeSpecs([]SpecSource{{Service: "svc", Itf: itf}}, SpecConfig{})
	got := findAll(fs, "unknown-target")
	if len(got) != 2 {
		t.Fatalf("want unknown-target for both the drop and the guard, got %v", fs)
	}
}

func TestWaiverApplyAndStaleness(t *testing.T) {
	fs := analyze(t, "interface I {\n\t@record { @drop this; @if intent; }\n\tvoid send(in Intent intent);\n}\n")
	if len(findAll(fs, "guard-type")) != 1 {
		t.Fatalf("fixture should produce one guard-type finding: %v", fs)
	}

	// A matching waiver removes the finding.
	waived := Apply(fs, []Waiver{{Check: "guard-type", Interface: "I", Method: "send", Reason: "test"}})
	if len(waived) != 0 {
		t.Fatalf("waiver did not apply: %v", waived)
	}

	// A wildcard method waiver also matches.
	waived = Apply(fs, []Waiver{{Check: "guard-type", Interface: "I", Method: "*", Reason: "test"}})
	if len(waived) != 0 {
		t.Fatalf("wildcard waiver did not apply: %v", waived)
	}

	// A waiver matching nothing surfaces as a stale-waiver warning, so
	// the policy list cannot drift from the specs silently.
	waived = Apply(nil, []Waiver{{Check: "guard-type", Interface: "I", Method: "gone", Reason: "test"}})
	if len(waived) != 1 || waived[0].Check != "stale-waiver" || waived[0].Severity != Warn {
		t.Fatalf("stale waiver not reported: %v", waived)
	}
}

func TestFindingStringFormat(t *testing.T) {
	f := Finding{Check: "guard-type", Severity: Error, File: "alarm", Line: 3, Col: 7,
		Interface: "IAlarmManager", Method: "set", Message: "boom"}
	s := f.String()
	for _, frag := range []string{"alarm:3:7", "error", "[guard-type]", "IAlarmManager.set", "boom"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Finding.String() %q missing %q", s, frag)
		}
	}
}
