package vet

import (
	"strings"
	"testing"
)

// TestWireDriftInlineMagic: a magic-shaped string literal with no named
// const cannot be cross-referenced between encoder and decoder.
func TestWireDriftInlineMagic(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/seglog/codec.go": `package seglog

func decode(b []byte) bool {
	return len(b) >= 4 && string(b[:4]) == "FLXQ"
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/seglog"}})
	got := findAll(fs, CheckWireDrift)
	if len(got) != 1 || got[0].Line != 4 || got[0].Col != 41 {
		t.Fatalf("want inline-magic finding at codec.go:4:41, got %v", fs)
	}
	if !strings.Contains(got[0].Message, `"FLXQ"`) {
		t.Fatalf("message should quote the magic: %s", got[0].Message)
	}
}

// TestWireDriftSingleSided: a declared magic touched by only one
// function means the encoder/decoder pair is broken; a healthy pair is
// clean. The healthy pair's decoder lives in ANOTHER package and
// references the const through its exported name, so the count can only
// reach two via the pass's cross-package magic facts.
func TestWireDriftSingleSided(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/seglog/codec.go": `package seglog

const Magic = "FLXG"

const orphanMagic = "FXC7"

func Encode(b []byte) []byte {
	return append([]byte(Magic), b...)
}

func decodeOld(b []byte) bool {
	return string(b[:4]) == orphanMagic
}
`,
		"internal/record/reader.go": `package record

import "flux/internal/seglog"

func validHeader(b []byte) bool {
	return len(b) >= 4 && string(b[:4]) == seglog.Magic
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/record", "internal/seglog"}})
	got := findAll(fs, CheckWireDrift)
	if len(got) != 1 || got[0].Line != 5 || got[0].Col != 7 {
		t.Fatalf("want only orphanMagic flagged at codec.go:5:7, got %v", fs)
	}
	if !strings.Contains(got[0].Message, "orphanMagic") {
		t.Fatalf("message should name the const: %s", got[0].Message)
	}
}

// TestWireDriftHeaderSmallerThanMagic: a frame header that cannot hold
// its own magic is a codec bug by construction.
func TestWireDriftHeaderSmallerThanMagic(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/seglog/frame.go": `package seglog

const frameMagic = "FLXH"

const headerSize = 3

func encode(b []byte) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, frameMagic)
	return append(hdr, b...)
}

func decode(b []byte) bool {
	return len(b) >= headerSize && string(b[:4]) == frameMagic
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/seglog"}})
	got := findAll(fs, CheckWireDrift)
	if len(got) != 1 || got[0].Line != 5 || got[0].Col != 7 {
		t.Fatalf("want header-size finding at frame.go:5:7, got %v", fs)
	}
	if !strings.Contains(got[0].Message, "header size 3") {
		t.Fatalf("message should state the sizes: %s", got[0].Message)
	}
}

// TestWireDriftUnusedCap: a length-guard cap that is never compared
// guards nothing; comparing it anywhere clears the finding.
func TestWireDriftUnusedCap(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/record/caps.go": `package record

const maxEntryBytes = 1 << 20

const maxBatchLen = 4096

func admit(n int) bool {
	return n <= maxBatchLen
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/record"}})
	got := findAll(fs, CheckWireDrift)
	if len(got) != 1 || got[0].Line != 3 || got[0].Col != 7 {
		t.Fatalf("want only maxEntryBytes flagged at caps.go:3:7, got %v", fs)
	}
}

// TestWireDriftFaultSites: every Site const must be enumerable through
// Sites(), injector callsites must name enumerable sites, and ad-hoc
// Site literals must match a declared site.
func TestWireDriftFaultSites(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/faults/faults.go": `package faults

type Site string

const (
	LinkFlap Site = "link.flap"
	Orphan   Site = "orphan.fault"
)

func Sites() []Site { return []Site{LinkFlap} }
`,
		"internal/migration/inject.go": `package migration

import "flux/internal/faults"

type injector interface{ Should(faults.Site) bool }

func hop(inj injector) {
	inj.Should(faults.LinkFlap)
	inj.Should(faults.Orphan)
	inj.Should(faults.Site("bogus.fault"))
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/faults", "internal/migration"}})
	got := findAll(fs, CheckWireDrift)
	if len(got) != 3 {
		t.Fatalf("want Orphan decl, Orphan use, and the bogus literal flagged, got %v", fs)
	}
	// Sorted by file: faults.go decl first, then the migration sites.
	if !strings.Contains(got[0].Message, "Orphan") || got[0].Line != 7 {
		t.Fatalf("want Orphan decl flagged at faults.go:7, got %v", got[0])
	}
	if got[1].Line != 9 || !strings.Contains(got[1].Message, "faults.Orphan") {
		t.Fatalf("want injector callsite flagged at inject.go:9, got %v", got[1])
	}
	if got[2].Line != 10 || !strings.Contains(got[2].Message, "bogus.fault") {
		t.Fatalf("want ad-hoc literal flagged at inject.go:10, got %v", got[2])
	}
}

// TestWireDriftAllowRoundTrip: a deliberately single-sided format takes
// an allow on its const and stays clean, with the directive marked used.
func TestWireDriftAllowRoundTrip(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/cria/legacy.go": `package cria

const legacyMagic = "FXC1" //fluxvet:allow wire-drift — fixture: decode-only legacy format

func decode(b []byte) bool {
	return string(b[:4]) == legacyMagic
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, WireDirs: []string{"internal/cria"}})
	if len(fs) != 0 {
		t.Fatalf("annotated single-sided magic should be clean, got %v", fs)
	}
}
