// Package vet implements fluxvet, Flux's replay-safety static analyzer.
//
// The paper's correctness argument rests entirely on the AIDL decorator
// specs being right: a missing @record, a too-eager @drop, or an @if guard
// over an incomparable argument silently corrupts replayed service state on
// the guest device. BinderCracker-style interface-contract bugs survive
// into production precisely because nothing cross-checks the contract
// against the code that honors it. fluxvet closes that gap with three
// analysis layers:
//
//	Layer 1 (spec.go)    — static analysis over compiled aidl.Interfaces:
//	                       dead drops, drop cycles, self-shadowing, guard
//	                       type errors, oneway/reply conflicts, unresolved
//	                       replay proxies, and @record coverage.
//	Layer 2 (loglint.go) — linting of persisted record logs against the
//	                       specs: prune/spec drift via a flat-scan
//	                       reference model, replay-order handle hazards
//	                       against a CRIA binder table, and log-shape
//	                       invariants.
//	Layer 3 (driver.go)  — an interprocedural pass driver over the Go
//	                       source tree (stdlib-only go/analysis
//	                       analogue): the package graph is loaded and
//	                       type-checked once, topologically sorted, and
//	                       named passes run in parallel exchanging
//	                       per-package facts. Checks: wallclock,
//	                       determinism-taint, maprange, lock-order,
//	                       durability, wire-drift, plus stale-allow /
//	                       unknown-allow directive hygiene.
//
// Findings are positioned (AIDL line:col for layer 1, file:line:col for
// layer 3, app/seq for layer 2) and gate `make verify` and CI: any
// unwaived finding fails the build. Intentional deviations are recorded as
// Waivers with a reason; a waiver that stops matching anything becomes a
// finding itself, so the waiver list cannot rot.
package vet

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a finding. Both severities gate the build; the
// distinction is advisory (errors are spec/correctness violations,
// warnings are coverage and style hazards).
type Severity uint8

const (
	Error Severity = iota
	Warn
)

func (s Severity) String() string {
	if s == Warn {
		return "warn"
	}
	return "error"
}

// Finding is one analyzer diagnostic.
type Finding struct {
	// Check is the stable check identifier ("dead-drop", "guard-type",
	// "wallclock", ...). Waivers match on it.
	Check    string
	Severity Severity

	// File/Line/Col position the finding. For spec findings File is the
	// service name (e.g. "alarm") and Line/Col index into its AIDL
	// source; for source findings File is a Go file path; for log
	// findings File is "log:<app>" and Line is the entry sequence number.
	File string
	Line int
	Col  int

	// Interface and Method give the AIDL context when applicable.
	Interface string
	Method    string

	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	var b strings.Builder
	if f.File != "" {
		b.WriteString(f.File)
		if f.Line > 0 {
			fmt.Fprintf(&b, ":%d", f.Line)
			if f.Col > 0 {
				fmt.Fprintf(&b, ":%d", f.Col)
			}
		}
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "%s: [%s]", f.Severity, f.Check)
	if f.Interface != "" {
		b.WriteString(" ")
		b.WriteString(f.Interface)
		if f.Method != "" {
			b.WriteString(".")
			b.WriteString(f.Method)
		}
		b.WriteString(":")
	}
	b.WriteString(" ")
	b.WriteString(f.Message)
	return b.String()
}

// Sort orders findings deterministically: by file, position, check.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Waiver suppresses findings of one check on one interface method. Method
// "*" matches every method of the interface. Every waiver must carry a
// Reason; Apply turns waivers that matched nothing into stale-waiver
// findings so the policy list tracks the specs.
type Waiver struct {
	Check     string
	Interface string
	Method    string
	Reason    string
}

func (w Waiver) matches(f Finding) bool {
	if w.Check != f.Check || w.Interface != f.Interface {
		return false
	}
	return w.Method == "*" || w.Method == f.Method
}

// Apply filters findings through the waiver list. Waived findings are
// removed; waivers that matched no finding are reported as stale-waiver
// warnings, keeping the policy honest as specs evolve.
func Apply(findings []Finding, waivers []Waiver) []Finding {
	used := make([]bool, len(waivers))
	var kept []Finding
	for _, f := range findings {
		waived := false
		for i, w := range waivers {
			if w.matches(f) {
				used[i] = true
				waived = true
			}
		}
		if !waived {
			kept = append(kept, f)
		}
	}
	for i, w := range waivers {
		if !used[i] {
			kept = append(kept, Finding{
				Check:     "stale-waiver",
				Severity:  Warn,
				Interface: w.Interface,
				Method:    w.Method,
				Message:   fmt.Sprintf("waiver for check %q no longer matches any finding; delete it (reason was: %s)", w.Check, w.Reason),
			})
		}
	}
	Sort(kept)
	return kept
}
