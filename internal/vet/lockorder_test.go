package vet

import (
	"strings"
	"testing"
)

// TestLockOrderSeededABBA seeds the classic AB/BA deadlock shape and
// asserts both conflicting acquisition sites are pinned exactly.
func TestLockOrderSeededABBA(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/record/locks.go": `package record

import "sync"

type Store struct{ mu sync.Mutex }
type Index struct{ mu sync.Mutex }

var store Store
var index Index

func StoreThenIndex() {
	store.mu.Lock()
	index.mu.Lock()
	index.mu.Unlock()
	store.mu.Unlock()
}

func IndexThenStore() {
	index.mu.Lock()
	store.mu.Lock()
	store.mu.Unlock()
	index.mu.Unlock()
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, LockDirs: []string{"internal/record"}})
	got := findAll(fs, CheckLockOrder)
	if len(got) != 2 {
		t.Fatalf("want both directions flagged, got %v", fs)
	}
	// Sorted by position: the Index acquisition at 13:2 (under Store),
	// then the Store acquisition at 20:2 (under Index).
	if got[0].Line != 13 || got[0].Col != 2 || got[1].Line != 20 || got[1].Col != 2 {
		t.Fatalf("want findings at locks.go:13:2 and locks.go:20:2, got %v", got)
	}
	if !strings.Contains(got[0].Message, "record.Index.mu") ||
		!strings.Contains(got[0].Message, "record.Store.mu") {
		t.Fatalf("message should name both lock identities: %s", got[0].Message)
	}
}

// TestLockOrderedSweepClean: acquiring many instances of the SAME lock
// identity in a loop — the PR-9 sorted all-shard sweep — is not an
// ordering conflict; instances are made safe by the sort, not by a
// cross-identity order.
func TestLockOrderedSweepClean(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/record/sweep.go": `package record

import "sync"

type shard struct{ mu sync.Mutex }

func Sweep(shards []*shard) {
	for _, s := range shards {
		s.mu.Lock()
	}
	for _, s := range shards {
		s.mu.Unlock()
	}
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, LockDirs: []string{"internal/record"}})
	if len(fs) != 0 {
		t.Fatalf("same-identity sweep must stay clean, got %v", fs)
	}
}

// TestLockOrderInterprocedural: one side of the conflict is hidden
// behind a helper call — the edge comes from the helper's acquire-set
// fact, and the finding lands on the call site taking the bad order.
func TestLockOrderInterprocedural(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/obs/locks.go": `package obs

import "sync"

type Reg struct{ mu sync.Mutex }
type Buf struct{ mu sync.Mutex }

var reg Reg
var buf Buf

func touchBuf() {
	buf.mu.Lock()
	buf.mu.Unlock()
}

func Export() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	touchBuf() // Reg.mu → Buf.mu via the helper's acquire set
}

func Flush() {
	buf.mu.Lock()
	reg.mu.Lock() // Buf.mu → Reg.mu: the reverse order
	reg.mu.Unlock()
	buf.mu.Unlock()
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, LockDirs: []string{"internal/obs"}})
	got := findAll(fs, CheckLockOrder)
	if len(got) != 2 {
		t.Fatalf("want the helper call and the direct reverse flagged, got %v", fs)
	}
	if got[0].Line != 19 || got[1].Line != 24 {
		t.Fatalf("want findings at locks.go:19 (call site) and locks.go:24, got %v", got)
	}
}

// TestLockOrderAllowRoundTrip: annotating one side silences that site,
// the other site still fires, and the directive is not stale.
func TestLockOrderAllowRoundTrip(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/record/locks.go": `package record

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

func AB() {
	a.mu.Lock()
	b.mu.Lock() //fluxvet:allow lock-order — fixture: this side is the sanctioned order
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, LockDirs: []string{"internal/record"}})
	got := findAll(fs, CheckLockOrder)
	if len(got) != 1 || got[0].Line != 20 {
		t.Fatalf("want only the unannotated side at locks.go:20, got %v", fs)
	}
	if stale := findAll(fs, CheckStaleAllow); len(stale) != 0 {
		t.Fatalf("directive was used; must not be stale: %v", stale)
	}
}
