package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The wire-drift pass reconciles the on-disk/on-wire format constants
// across the codec packages (cria, seglog, record, migration, faults).
// Formats drift when one side of an encoder/decoder pair is edited and
// the other is not; each rule below catches one drift shape:
//
//   - a string literal shaped like a wire magic ("FXC1".."FXC9",
//     "FLXA".."FLXZ") with no named const declaring it — an inline magic
//     cannot be cross-referenced;
//   - a declared magic referenced by fewer than two functions repo-wide —
//     a healthy format has at least an encoder and a decoder touching the
//     same const; one reference means the pair is broken (or the format
//     is deliberately single-sided, which takes an allow);
//   - a frame-header size const smaller than the package's magic — the
//     header cannot contain the magic it claims to start with;
//   - a length-guard cap const (max*Bytes/Size/Len/Prealloc) that is
//     never compared against — a cap that guards nothing lets a corrupt
//     length field drive an unbounded allocation;
//   - faults.Site drift: a declared Site const missing from
//     faults.Sites(), an injector callsite naming a site that Sites()
//     does not return, or an ad-hoc faults.Site("...") literal matching
//     no declared site — the CLI's site enumeration and the injector
//     must agree.
//
// Magic declarations are exported as per-package facts, so a package
// referencing seglog.Magic counts as a reference to seglog's declaration
// without the pass re-reading seglog.

var (
	wireMagicRe = regexp.MustCompile(`^(FXC[0-9]|FLX[A-Z])$`)
	wireCapRe   = regexp.MustCompile(`^max.*(Bytes|Prealloc|Size|Len)$`)
)

// magicFact is the exported per-package fact mapping a magic const's
// name to its value, so cross-package selector references resolve.
type magicFact string

type wireMagicDecl struct {
	value, name, pkg string
	pos              token.Position
}

func wireDriftPass(pc *passCtx) []Finding {
	type litUse struct {
		value string
		pos   token.Position
	}
	type crossRef struct {
		path, name, fn string
		pos            token.Position
	}
	type siteUse struct {
		name string
		pos  token.Position
	}

	decls := map[string][]wireMagicDecl{}  // magic value → declarations
	refs := map[string]map[string]bool{}   // magic value → referencing funcs
	var unknownLits []litUse               // magic-shaped literals with no decl
	var crossRefs []crossRef               // pkg.Const selector references
	capUsed := map[string]bool{}           // cap const name → compared?
	var capDecls []wireMagicDecl           // cap consts (value unused)
	var headerFindings []Finding           // header-vs-magic size mismatches
	siteDecls := map[string]string{}       // faults.Site const name → value
	sitePos := map[string]token.Position{} // site const name → decl position
	siteListed := map[string]bool{}        // names returned by faults.Sites()
	var siteRefs []siteUse                 // cross-package site const uses
	var siteLits []litUse                  // ad-hoc faults.Site("...") literals

	addRef := func(value, fn string) {
		if refs[value] == nil {
			refs[value] = map[string]bool{}
		}
		refs[value][fn] = true
	}

	for _, u := range pc.units {
		if !pc.report(u) {
			continue
		}
		p := u.pkg
		isFaults := u.dir == "internal/faults"
		localMagic := map[string]string{} // const name → magic value
		declLits := map[*ast.BasicLit]bool{}
		var localHeader *wireMagicDecl
		headerVal := -1

		// First sweep: const declarations.
		for _, f := range p.files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						pos := p.fset.Position(name.Pos())
						var lit *ast.BasicLit
						if i < len(vs.Values) {
							if bl, ok := vs.Values[i].(*ast.BasicLit); ok && bl.Kind == token.STRING {
								lit = bl
							}
						}
						if lit != nil {
							if v, err := strconv.Unquote(lit.Value); err == nil && wireMagicRe.MatchString(v) {
								declLits[lit] = true
								if tid, ok := vs.Type.(*ast.Ident); isFaults && ok && tid.Name == "Site" {
									// a Site const that happens to look
									// like a magic — treat as site only
								} else {
									d := wireMagicDecl{value: v, name: name.Name, pkg: p.name, pos: pos}
									decls[v] = append(decls[v], d)
									localMagic[name.Name] = v
									pc.facts.Export(u.path, name.Name, magicFact(v))
								}
							}
						}
						if isFaults {
							if tid, ok := vs.Type.(*ast.Ident); ok && tid.Name == "Site" && lit != nil {
								if v, err := strconv.Unquote(lit.Value); err == nil {
									siteDecls[name.Name] = v
									sitePos[name.Name] = pos
								}
							}
						}
						if strings.EqualFold(name.Name, "headerSize") {
							if c, ok := p.info.Defs[name].(*types.Const); ok {
								if v, exact := constant.Int64Val(c.Val()); exact {
									hv := int(v)
									d := wireMagicDecl{name: name.Name, pkg: p.name, pos: pos}
									localHeader, headerVal = &d, hv
								}
							}
						}
						if wireCapRe.MatchString(name.Name) {
							capDecls = append(capDecls, wireMagicDecl{name: name.Name, pkg: p.name, pos: pos})
						}
					}
				}
			}
		}

		// Second sweep: references, per enclosing function.
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fn := p.name + ".(package)"
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fn = p.name + "." + funcKey(fd)
					if isFaults && fd.Name.Name == "Sites" && fd.Recv == nil {
						ast.Inspect(fd.Body, func(n ast.Node) bool {
							if id, ok := n.(*ast.Ident); ok {
								if _, isSite := siteDecls[id.Name]; isSite {
									siteListed[id.Name] = true
								}
							}
							return true
						})
					}
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.BasicLit:
						if e.Kind != token.STRING || declLits[e] {
							return true
						}
						v, err := strconv.Unquote(e.Value)
						if err != nil || !wireMagicRe.MatchString(v) {
							return true
						}
						addRef(v, fn)
						unknownLits = append(unknownLits, litUse{v, p.fset.Position(e.Pos())})
					case *ast.Ident:
						if v, ok := localMagic[e.Name]; ok {
							if c, isConst := p.info.Uses[e].(*types.Const); isConst && c.Pkg() == p.typesPkg {
								addRef(v, fn)
							}
						}
					case *ast.SelectorExpr:
						id, ok := e.X.(*ast.Ident)
						if !ok {
							return true
						}
						pn, ok := p.info.Uses[id].(*types.PkgName)
						if !ok {
							return true
						}
						path := pn.Imported().Path()
						if !u.imports[path] {
							return true
						}
						crossRefs = append(crossRefs, crossRef{path, e.Sel.Name, fn, p.fset.Position(e.Sel.Pos())})
						return false
					case *ast.BinaryExpr:
						switch e.Op {
						case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
							for _, side := range []ast.Expr{e.X, e.Y} {
								ast.Inspect(side, func(m ast.Node) bool {
									if id, ok := m.(*ast.Ident); ok && wireCapRe.MatchString(id.Name) {
										capUsed[id.Name] = true
									}
									return true
								})
							}
						}
					case *ast.CallExpr:
						// faults.Site("...") ad-hoc literal conversion.
						if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Site" && len(e.Args) == 1 {
							if id, ok := sel.X.(*ast.Ident); ok {
								if pn, ok := p.info.Uses[id].(*types.PkgName); ok &&
									strings.HasSuffix(pn.Imported().Path(), "internal/faults") {
									if bl, ok := e.Args[0].(*ast.BasicLit); ok && bl.Kind == token.STRING {
										if v, err := strconv.Unquote(bl.Value); err == nil {
											siteLits = append(siteLits, litUse{v, p.fset.Position(bl.Pos())})
										}
									}
								}
							}
						}
					}
					return true
				})
			}
		}

		// Header-vs-magic reconciliation is package-local.
		if localHeader != nil && headerVal >= 0 {
			for _, v := range localMagic {
				if headerVal < len(v) {
					headerFindings = append(headerFindings, Finding{
						Check: CheckWireDrift, Severity: Error,
						File: localHeader.pos.Filename, Line: localHeader.pos.Line, Col: localHeader.pos.Column,
						Message: fmt.Sprintf("frame header size %d is smaller than magic %q (%d bytes): the header cannot contain the magic it claims to start with",
							headerVal, v, len(v)),
					})
				}
			}
		}
	}

	// Reconciliation: resolve cross-package references through facts.
	faultsPathSuffix := "internal/faults"
	for _, cr := range crossRefs {
		if strings.HasSuffix(cr.path, faultsPathSuffix) {
			if _, isSite := siteDecls[cr.name]; isSite {
				siteRefs = append(siteRefs, siteUse{cr.name, cr.pos})
			}
			continue
		}
		if v, ok := pc.facts.Import(cr.path, cr.name); ok {
			addRef(string(v.(magicFact)), cr.fn)
		}
		if wireCapRe.MatchString(cr.name) {
			capUsed[cr.name] = true
		}
	}

	var out []Finding
	out = append(out, headerFindings...)

	for _, l := range unknownLits {
		if _, declared := decls[l.value]; declared {
			continue
		}
		out = append(out, Finding{
			Check: CheckWireDrift, Severity: Error,
			File: l.pos.Filename, Line: l.pos.Line, Col: l.pos.Column,
			Message: fmt.Sprintf("inline wire magic %q has no named const: name it beside its format's other constants so encoder and decoder share one definition, or annotate `%s wire-drift — <reason>`",
				l.value, AllowDirective),
		})
	}

	values := make([]string, 0, len(decls))
	for v := range decls {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		n := len(refs[v])
		if n >= 2 {
			continue
		}
		for _, d := range decls[v] {
			out = append(out, Finding{
				Check: CheckWireDrift, Severity: Error,
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Message: fmt.Sprintf("wire magic %s = %q is referenced by %d function(s) repo-wide: an encoder/decoder pair should both touch it — if the format is deliberately single-sided, annotate `%s wire-drift — <reason>`",
					d.name, v, n, AllowDirective),
			})
		}
	}

	for _, c := range capDecls {
		if capUsed[c.name] {
			continue
		}
		out = append(out, Finding{
			Check: CheckWireDrift, Severity: Error,
			File: c.pos.Filename, Line: c.pos.Line, Col: c.pos.Column,
			Message: fmt.Sprintf("length-guard cap %s is never compared against: a cap that guards nothing lets a corrupt length field drive an unbounded allocation — use it on the decode path or annotate `%s wire-drift — <reason>`",
				c.name, AllowDirective),
		})
	}

	siteNames := make([]string, 0, len(siteDecls))
	for n := range siteDecls {
		siteNames = append(siteNames, n)
	}
	sort.Strings(siteNames)
	siteValues := map[string]bool{}
	for _, n := range siteNames {
		siteValues[siteDecls[n]] = true
		if !siteListed[n] {
			pos := sitePos[n]
			out = append(out, Finding{
				Check: CheckWireDrift, Severity: Error,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("faults.Site const %s is not returned by faults.Sites(): the CLI's site enumeration has drifted from the injector — add it to Sites() or annotate `%s wire-drift — <reason>`",
					n, AllowDirective),
			})
		}
	}
	for _, r := range siteRefs {
		if siteListed[r.name] {
			continue
		}
		out = append(out, Finding{
			Check: CheckWireDrift, Severity: Error,
			File: r.pos.Filename, Line: r.pos.Line, Col: r.pos.Column,
			Message: fmt.Sprintf("injector callsite uses faults.%s, which faults.Sites() does not return: experiments cannot enumerate this site — add it to Sites() or annotate `%s wire-drift — <reason>`",
				r.name, AllowDirective),
		})
	}
	for _, l := range siteLits {
		if siteValues[l.value] {
			continue
		}
		out = append(out, Finding{
			Check: CheckWireDrift, Severity: Error,
			File: l.pos.Filename, Line: l.pos.Line, Col: l.pos.Column,
			Message: fmt.Sprintf("ad-hoc faults.Site(%q) matches no declared site: use the named const so the injector and Sites() agree, or annotate `%s wire-drift — <reason>`",
				l.value, AllowDirective),
		})
	}
	return out
}
