package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Layer 3 — Go source passes.
//
// A self-contained analysis harness over the standard library's go/ast +
// go/types (the container bakes no golang.org/x/tools, so there is no
// go/analysis multichecker to lean on; the pass shape below mirrors it
// closely enough that migrating later is mechanical). Two passes enforce
// repo-wide simulation invariants:
//
//	wallclock  — no wall-clock reads (time.Now, time.Sleep, time.Since,
//	             timers/tickers) in virtual-clock packages. The entire
//	             simulation advances on kernel.Clock; a stray time.Now
//	             silently couples results to host speed. internal/obs
//	             (wall-time spans by design) and internal/apps (real
//	             throughput microbenches) are exempt; individual
//	             intentional sites carry a `//fluxvet:allow wallclock`
//	             comment with a reason.
//	maprange   — no bare map iteration in deterministic output paths
//	             (experiments, migration, netsim, obs): Go randomizes map
//	             order, so a map range feeding Report fields, metrics, or
//	             rendered tables produces run-to-run diffs. Collection
//	             loops (append-only), integer accumulation, and
//	             map-to-map transforms are order-independent and allowed;
//	             everything else needs sorted keys or an explicit
//	             `//fluxvet:allow maprange` comment.
//
// Packages are type-checked one at a time with a permissive importer, so
// the pass needs no network, no build cache, and no subprocess: map-ness
// of package-local expressions (the realistic bug class) resolves exactly;
// cross-package map-typed returns degrade to a syntactic miss, never a
// false positive.

// AllowDirective is the magic comment that suppresses a source finding on
// its own line or the line directly above:
//
//	start := time.Now() //fluxvet:allow wallclock — measures real regen cost
const AllowDirective = "//fluxvet:allow"

// wallClockDeny lists the time package selectors that read or depend on
// the wall clock. Pure types/constructors (time.Duration, time.Unix,
// time.Date, time.UnixMilli) are fine.
var wallClockDeny = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// SourceConfig parameterizes RunSource.
type SourceConfig struct {
	// Root is the repository root (the directory holding go.mod).
	Root string
	// VirtualClockDirs are Root-relative package directories in which the
	// wallclock pass runs.
	VirtualClockDirs []string
	// DeterministicDirs are Root-relative package directories in which
	// the maprange pass runs.
	DeterministicDirs []string
	// IncludeTests also lints _test.go files (off by default: tests
	// routinely use real timeouts).
	IncludeTests bool
}

// DefaultSourceConfig returns the repo's shipped invariant scope: every
// internal package is on the virtual clock except obs (wall-time spans by
// design) and apps (real-throughput microbenches); the deterministic
// output paths are the evaluation driver, the migration pipeline, the
// network simulator, and the telemetry exporters.
func DefaultSourceConfig(root string) SourceConfig {
	cfg := SourceConfig{Root: root}
	exempt := map[string]bool{"obs": true, "apps": true}
	ents, err := os.ReadDir(filepath.Join(root, "internal"))
	if err == nil {
		for _, e := range ents {
			if e.IsDir() && !exempt[e.Name()] {
				cfg.VirtualClockDirs = append(cfg.VirtualClockDirs, filepath.Join("internal", e.Name()))
			}
		}
	}
	sort.Strings(cfg.VirtualClockDirs)
	cfg.DeterministicDirs = []string{
		"internal/atomicio",
		"internal/chunkstore",
		"internal/experiments",
		"internal/fleet",
		"internal/lab",
		"internal/migration",
		"internal/netsim",
		"internal/obs",
		"internal/seglog",
		"internal/yamlite",
	}
	return cfg
}

// RunSource runs the layer-3 passes and returns positioned findings.
func RunSource(cfg SourceConfig) ([]Finding, error) {
	var out []Finding
	wall := map[string]bool{}
	for _, d := range cfg.VirtualClockDirs {
		wall[d] = true
	}
	det := map[string]bool{}
	for _, d := range cfg.DeterministicDirs {
		det[d] = true
	}
	dirs := make([]string, 0, len(wall)+len(det))
	for d := range wall {
		dirs = append(dirs, d)
	}
	for d := range det {
		if !wall[d] {
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)

	// One FileSet and one (source-resolving, cached) stdlib importer are
	// shared across packages so the standard library is type-checked once.
	fset := token.NewFileSet()
	imp := permissiveImporter{
		fallback: importer.ForCompiler(fset, "source", nil),
		stubs:    map[string]*types.Package{},
	}
	for _, dir := range dirs {
		pkg, err := loadPackage(fset, imp, filepath.Join(cfg.Root, dir), cfg.IncludeTests)
		if err != nil {
			return nil, fmt.Errorf("vet: loading %s: %w", dir, err)
		}
		if pkg == nil {
			continue // no Go files
		}
		if wall[dir] {
			out = append(out, wallClockPass(pkg)...)
		}
		if det[dir] {
			out = append(out, mapRangePass(pkg)...)
		}
	}
	Sort(out)
	return out, nil
}

// sourcePkg is one parsed (and best-effort type-checked) package.
type sourcePkg struct {
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	// allowed maps file → set of lines carrying (or directly below) an
	// allow directive, per check name.
	allowed map[string]map[int]map[string]bool
}

// loadPackage parses every Go file of one directory (non-recursive) and
// type-checks it with a permissive importer: the standard library resolves
// for real (from GOROOT source), everything else gets an empty placeholder
// package. Type errors are expected and ignored; the recorded types.Info
// still resolves everything package-local.
func loadPackage(fset *token.FileSet, imp types.Importer, dir string, includeTests bool) (*sourcePkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &sourcePkg{fset: fset, allowed: map[string]map[int]map[string]bool{}}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		p.indexAllows(path, f)
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	p.info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(error) {}, // non-stdlib imports are stubs; errors expected
		DisableUnusedImportCheck: true,
	}
	conf.Check(dir, fset, p.files, p.info) // error ignored: Info is still filled
	return p, nil
}

// permissiveImporter resolves stdlib imports for real (so `time` and map
// types from the standard library type-check exactly) and fabricates an
// empty placeholder for everything else (module-internal imports resolve
// lazily to invalid types, which the passes treat as "not provably a
// map"). Fabricated packages are cached so repeated imports are cheap.
type permissiveImporter struct {
	fallback types.Importer
	stubs    map[string]*types.Package
}

func (p permissiveImporter) Import(path string) (*types.Package, error) {
	// Module-internal packages never resolve through the stdlib source
	// importer; skip the doomed GOROOT lookup.
	if !strings.Contains(path, ".") && !strings.HasPrefix(path, "flux") && p.fallback != nil {
		if pkg, err := p.fallback.Import(path); err == nil {
			return pkg, nil
		}
	}
	if pkg, ok := p.stubs[path]; ok {
		return pkg, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	if p.stubs != nil {
		p.stubs[path] = pkg
	}
	return pkg, nil
}

// indexAllows records which (line, check) pairs an allow directive covers.
// A directive covers its own line and the line below, so both trailing and
// preceding comments work.
func (p *sourcePkg) indexAllows(path string, f *ast.File) {
	lines := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, AllowDirective)
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len(AllowDirective):])
			check := rest
			if i := strings.IndexAny(rest, " \t—"); i >= 0 {
				check = rest[:i]
			}
			if check == "" {
				continue
			}
			line := p.fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if lines[l] == nil {
					lines[l] = map[string]bool{}
				}
				lines[l][check] = true
			}
		}
	}
	p.allowed[path] = lines
}

func (p *sourcePkg) isAllowed(pos token.Position, check string) bool {
	return p.allowed[pos.Filename][pos.Line][check]
}

// wallClockPass flags wall-clock selector uses on the standard time
// package inside virtual-clock packages.
func wallClockPass(p *sourcePkg) []Finding {
	var out []Finding
	for _, f := range p.files {
		timeNames := map[string]bool{}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "time" {
				continue
			}
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				timeNames[name] = true
			}
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] || !wallClockDeny[sel.Sel.Name] {
				return true
			}
			// A local object named `time` shadows the import.
			if obj, ok := p.info.Uses[id]; ok {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			pos := p.fset.Position(sel.Pos())
			if p.isAllowed(pos, "wallclock") {
				return true
			}
			out = append(out, Finding{
				Check: "wallclock", Severity: Error,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("time.%s in a virtual-clock package: route through kernel.Clock or annotate `%s wallclock — <reason>`",
					sel.Sel.Name, AllowDirective),
			})
			return true
		})
	}
	return out
}

// mapRangePass flags bare map iteration in deterministic packages unless
// the loop body is provably order-independent.
func mapRangePass(p *sourcePkg) []Finding {
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependentBody(p, rng) {
				return true
			}
			pos := p.fset.Position(rng.Pos())
			if p.isAllowed(pos, "maprange") {
				return true
			}
			out = append(out, Finding{
				Check: "maprange", Severity: Error,
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("bare map iteration in a deterministic path: collect and sort the keys, or annotate `%s maprange — <reason>`",
					AllowDirective),
			})
			return true
		})
	}
	return out
}

// orderIndependentBody reports whether every statement of the range body
// is order-independent: appending to a slice (collect-then-sort idiom),
// integer accumulation (+=, ++, --; float accumulation is NOT commutative
// in IEEE754 and stays flagged), deleting from or storing into another
// map, an integer counter assignment, or the membership-test idiom
// `if cond { return <constants> }` — bailing out with the same constant
// from whichever iteration trips the condition yields the same result in
// any order.
func orderIndependentBody(p *sourcePkg, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true
	}
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !integerExpr(p, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !orderIndependentAssign(p, s) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) is order-independent.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "delete" {
				return false
			}
		case *ast.IfStmt:
			if !constantGuardReturn(s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// constantGuardReturn matches `if cond { return <constant literals> }`
// with no else and no init statement beyond the condition: an
// early-return of constants is the same constant regardless of which
// iteration triggers it.
func constantGuardReturn(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	ret, ok := s.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		switch e := r.(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if e.Name != "true" && e.Name != "false" && e.Name != "nil" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderIndependentAssign(p *sourcePkg, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative only over integers; float addition is
		// order-dependent (and string += builds order-dependent output).
		return len(s.Lhs) == 1 && integerExpr(p, s.Lhs[0])
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// x = append(x, ...) — the collect-then-sort idiom.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				return true
			}
		}
		// m2[k] = v — building another map is order-independent.
		if _, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			if tv, ok := p.info.Types[s.Lhs[0].(*ast.IndexExpr).X]; ok && tv.Type != nil {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
		}
		return false
	}
	return false
}

func integerExpr(p *sourcePkg, e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
