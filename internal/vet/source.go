package vet

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Layer 3 — Go source passes.
//
// A self-contained go/analysis-style pass driver over the standard
// library's go/ast + go/types (the container bakes no golang.org/x/tools,
// so there is no multichecker to lean on; the driver shape mirrors it
// closely enough that migrating later is mechanical). The repo's package
// graph is loaded and type-checked exactly once, passes run in parallel
// (one goroutine per pass, packages visited in import-dependency order so
// per-package facts flow from imported packages to their importers), and
// every diagnostic funnels through the same positioned Finding type and
// the //fluxvet:allow waiver machinery. See driver.go for the scheduler
// and pass registry; the individual analyses live in pass_*.go:
//
//	wallclock          — direct wall-clock reads (time.Now, time.Sleep,
//	                     timers/tickers) in virtual-clock packages
//	                     (pass_determinism.go).
//	determinism-taint  — call-graph propagation of wall-clock / unseeded
//	                     math/rand reach: a helper that transitively hits
//	                     a nondeterminism source is flagged at every call
//	                     site inside a deterministic output path, with
//	                     facts crossing package boundaries
//	                     (pass_determinism.go).
//	maprange           — bare map iteration in deterministic output paths
//	                     unless the loop body is provably
//	                     order-independent (pass_maprange.go).
//	lock-order         — conflicting mutex-acquisition orders across the
//	                     lock-heavy packages; summaries of which locks a
//	                     function takes propagate through the call graph
//	                     (pass_lockorder.go).
//	durability         — discarded Write/Sync errors and deferred Close
//	                     on *os.File write paths, and tmp+rename
//	                     sequences that bypass atomicio.WriteFile
//	                     (pass_durability.go).
//	wire-drift         — cross-package consistency of the wire magics
//	                     (FXC1–FXC4, FLXG, FLXA), header sizes,
//	                     length-guard caps, and faults.Site coverage
//	                     (pass_wiredrift.go).
//
// Packages are type-checked one at a time with a permissive importer, so
// the passes need no network, no build cache, and no subprocess: map-ness
// and receiver types of package-local expressions (the realistic bug
// class) resolve exactly; cross-package types degrade to a syntactic
// miss, never a false positive. Cross-package *semantic* knowledge —
// taint, lock sets, magic registries — travels through the driver's
// per-package fact store instead.

// AllowDirective is the magic comment that suppresses a source finding on
// its own line or the line directly above:
//
//	start := time.Now() //fluxvet:allow wallclock — measures real regen cost
//
// Only a comment that *begins* with the directive counts (mentions inside
// prose, like the example above, do not). A directive whose check name is
// unknown is an unknown-allow finding; a directive that suppresses
// nothing is a stale-allow finding, so annotations cannot rot.
const AllowDirective = "//fluxvet:allow"

// Source-layer check names. Waivers and -only/-skip match on these.
const (
	CheckWallClock        = "wallclock"
	CheckDeterminismTaint = "determinism-taint"
	CheckMapRange         = "maprange"
	CheckLockOrder        = "lock-order"
	CheckDurability       = "durability"
	CheckWireDrift        = "wire-drift"
	// CheckStaleAllow and CheckUnknownAllow are emitted by the driver
	// itself (directive hygiene); they are not selectable.
	CheckStaleAllow   = "stale-allow"
	CheckUnknownAllow = "unknown-allow"
)

// SourceCheckNames lists the selectable source checks in stable order.
func SourceCheckNames() []string {
	return []string{
		CheckDeterminismTaint, CheckDurability, CheckLockOrder,
		CheckMapRange, CheckWallClock, CheckWireDrift,
	}
}

// SourceConfig parameterizes RunSource. Each pass runs over (and reports
// in) its own directory scope; the driver loads the union exactly once.
type SourceConfig struct {
	// Root is the repository root (the directory holding go.mod).
	Root string
	// VirtualClockDirs are Root-relative package directories in which the
	// wallclock check runs, and in which determinism-taint facts are
	// gathered (packages outside the list — obs, apps — use the wall
	// clock by design and never propagate taint).
	VirtualClockDirs []string
	// DeterministicDirs are Root-relative package directories in which
	// the maprange check runs.
	DeterministicDirs []string
	// TaintDirs are Root-relative package directories in which
	// determinism-taint findings are reported: deterministic output
	// paths whose helpers must not transitively reach a wall clock or
	// unseeded rand. Typically the intersection of VirtualClockDirs and
	// DeterministicDirs.
	TaintDirs []string
	// LockDirs are Root-relative package directories in which the
	// lock-order check extracts mutex-acquisition orders.
	LockDirs []string
	// DurabilityDirs are Root-relative package directories in which the
	// durability check runs.
	DurabilityDirs []string
	// WireDirs are Root-relative package directories in which the
	// wire-drift check runs.
	WireDirs []string
	// IncludeTests also lints _test.go files (off by default: tests
	// routinely use real timeouts).
	IncludeTests bool
}

// DefaultSourceConfig returns the repo's shipped invariant scope: every
// internal package is on the virtual clock except obs (wall-time spans by
// design) and apps (real-throughput microbenches); the deterministic
// output paths are the evaluation driver, the migration pipeline, the
// network simulator, and the telemetry exporters; the lock-order scope is
// the sharded/locked hot paths; the durability scope is the three
// packages that own fsync'd write paths; the wire scope is every package
// that declares or consumes a wire magic or a fault site.
func DefaultSourceConfig(root string) SourceConfig {
	cfg := SourceConfig{Root: root}
	exempt := map[string]bool{"obs": true, "apps": true}
	ents, err := os.ReadDir(filepath.Join(root, "internal"))
	if err == nil {
		for _, e := range ents {
			if e.IsDir() && !exempt[e.Name()] {
				cfg.VirtualClockDirs = append(cfg.VirtualClockDirs, filepath.Join("internal", e.Name()))
			}
		}
	}
	sort.Strings(cfg.VirtualClockDirs)
	cfg.DeterministicDirs = []string{
		"internal/atomicio",
		"internal/chunkstore",
		"internal/experiments",
		"internal/fleet",
		"internal/lab",
		"internal/migration",
		"internal/netsim",
		"internal/obs",
		"internal/seglog",
		"internal/yamlite",
	}
	// Deterministic output paths that are also on the virtual clock:
	// everything above except obs (wall-time telemetry by design).
	wall := map[string]bool{}
	for _, d := range cfg.VirtualClockDirs {
		wall[d] = true
	}
	for _, d := range cfg.DeterministicDirs {
		if wall[d] {
			cfg.TaintDirs = append(cfg.TaintDirs, d)
		}
	}
	cfg.LockDirs = []string{
		"internal/chunkstore",
		"internal/obs",
		"internal/record",
		"internal/seglog",
	}
	cfg.DurabilityDirs = []string{
		"internal/atomicio",
		"internal/record",
		"internal/seglog",
	}
	cfg.WireDirs = []string{
		"internal/cria",
		"internal/faults",
		"internal/migration",
		"internal/record",
		"internal/seglog",
	}
	return cfg
}

// RunSource runs every layer-3 pass and returns positioned findings.
// Back-compat façade over the driver; see RunSourceChecks for check
// selection and per-pass timings.
func RunSource(cfg SourceConfig) ([]Finding, error) {
	fs, _, err := RunSourceChecks(cfg, nil, nil)
	return fs, err
}

// sourcePkg is one parsed (and best-effort type-checked) package.
type sourcePkg struct {
	fset     *token.FileSet
	files    []*ast.File
	info     *types.Info
	typesPkg *types.Package // the checked package (for same-package object tests)
	name     string         // package clause name
	// directives are every allow directive in the package, in file
	// order; allowIdx maps file → line → check → directive (a directive
	// covers its own line and the line below).
	directives []*allowDirective
	allowIdx   map[string]map[int]map[string]*allowDirective
}

// allowDirective is one //fluxvet:allow comment. The driver marks it
// used when it suppresses a finding; an unused directive for an enabled
// check becomes a stale-allow finding.
type allowDirective struct {
	file  string
	line  int
	check string
	used  bool
}

// loadPackage parses every Go file of one directory (non-recursive) and
// type-checks it with a permissive importer: the standard library resolves
// for real (from GOROOT source), everything else gets an empty placeholder
// package. Type errors are expected and ignored; the recorded types.Info
// still resolves everything package-local.
func loadPackage(fset *token.FileSet, imp types.Importer, dir string, includeTests bool) (*sourcePkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &sourcePkg{fset: fset, allowIdx: map[string]map[int]map[string]*allowDirective{}}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		p.name = f.Name.Name
		p.indexAllows(path, f)
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	p.info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(error) {}, // non-stdlib imports are stubs; errors expected
		DisableUnusedImportCheck: true,
	}
	p.typesPkg, _ = conf.Check(dir, fset, p.files, p.info) // error ignored: Info is still filled
	return p, nil
}

// permissiveImporter resolves stdlib imports for real (so `time` and map
// types from the standard library type-check exactly) and fabricates an
// empty placeholder for everything else (module-internal imports resolve
// lazily to invalid types, which the passes treat as "not provably a
// map"). Fabricated packages are cached so repeated imports are cheap.
type permissiveImporter struct {
	fallback types.Importer
	stubs    map[string]*types.Package
}

func newPermissiveImporter(fset *token.FileSet) permissiveImporter {
	return permissiveImporter{
		fallback: importer.ForCompiler(fset, "source", nil),
		stubs:    map[string]*types.Package{},
	}
}

func (p permissiveImporter) Import(path string) (*types.Package, error) {
	// Module-internal packages never resolve through the stdlib source
	// importer; skip the doomed GOROOT lookup.
	if !strings.Contains(path, ".") && !strings.HasPrefix(path, "flux") && p.fallback != nil {
		if pkg, err := p.fallback.Import(path); err == nil {
			return pkg, nil
		}
	}
	if pkg, ok := p.stubs[path]; ok {
		return pkg, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	if p.stubs != nil {
		p.stubs[path] = pkg
	}
	return pkg, nil
}

// indexAllows records the package's allow directives. Only comments that
// begin with the directive count — a mention inside prose or an example
// does not — and each directive covers its own line and the line below,
// so both trailing and preceding comment forms work.
func (p *sourcePkg) indexAllows(path string, f *ast.File) {
	lines := p.allowIdx[path]
	if lines == nil {
		lines = map[int]map[string]*allowDirective{}
		p.allowIdx[path] = lines
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowDirective) {
				continue
			}
			rest := strings.TrimSpace(c.Text[len(AllowDirective):])
			check := rest
			if i := strings.IndexAny(rest, " \t—"); i >= 0 {
				check = rest[:i]
			}
			if check == "" {
				continue
			}
			line := p.fset.Position(c.Pos()).Line
			d := &allowDirective{file: path, line: line, check: check}
			p.directives = append(p.directives, d)
			for _, l := range []int{line, line + 1} {
				if lines[l] == nil {
					lines[l] = map[string]*allowDirective{}
				}
				lines[l][check] = d
			}
		}
	}
}

// isAllowed reports whether a directive covers (line, check) — without
// marking it used. Passes consult it when an annotation changes the
// analysis itself (an allowed wall-clock site does not taint its
// callers); the driver does the authoritative suppress-and-mark.
func (p *sourcePkg) isAllowed(pos token.Position, check string) bool {
	return p.allowIdx[pos.Filename][pos.Line][check] != nil
}

// allowFor returns the directive covering (line, check), if any.
func (p *sourcePkg) allowFor(file string, line int, check string) *allowDirective {
	return p.allowIdx[file][line][check]
}
