package vet

import (
	"fmt"
	"sort"
	"strings"

	"flux/internal/aidl"
)

// Layer 1 — decorator-spec analysis.
//
// The checks here run over compiled aidl.Interfaces, so they catch both
// bad source decorations and programmatically built interfaces that never
// went through the parser's semantic check. Each finding carries the
// precise AIDL source position when the interface was parsed from source.
//
// Check catalog:
//
//	dead-drop       @drop target that is never @record'ed: no entry of it
//	                can exist in the log, so the rule can never fire.
//	unknown-target  @drop target that is not a method of the interface
//	                (programmatic specs bypass the parser check).
//	self-shadow     a method drops itself by literal name instead of the
//	                `this` keyword (annihilation semantics silently differ),
//	                or lists the same target twice.
//	drop-cycle      a cycle of distinct methods dropping each other where
//	                some participant omits `this`: the cycle shadows state
//	                without pairwise annihilation, so the surviving log
//	                depends on call order in a way replay cannot see.
//	orphan-guard    @if/@elif signatures with no @drop targets; the guard
//	                can never be evaluated.
//	guard-type      @if/@elif argument whose parameter type is not
//	                comparable (int/long/boolean/String). Parcelable,
//	                IBinder, and fd guards compare ArgString renderings
//	                ("h:7", "fd:3") whose numeric values are device-local,
//	                and float guards compare formatted approximations.
//	guard-type-mismatch  @if argument typed differently on the triggering
//	                method and a drop target; the signature comparison is
//	                between differently-encoded values.
//	oneway-conflict oneway methods that depend on a reply: non-void
//	                returns, out/inout parameters, or a @replayproxy that
//	                replays from the recorded reply parcel (oneway calls
//	                record no reply).
//	proxy-unresolved  @replayproxy path not registered in the Adaptive
//	                Replay proxy registry.
//	no-record       dispatcher-visible state-mutating method (void return)
//	                carrying no @record: its effect on service state is
//	                lost on migration. Methods whose state is intentionally
//	                device-local are waived with a reason in the policy.
type SpecSource struct {
	// Service is the ServiceManager registration name ("alarm",
	// "notification"); it becomes the File of findings.
	Service string
	Itf     *aidl.Interface
}

// ProxyInfo describes one registered Adaptive Replay proxy.
type ProxyInfo struct {
	// Registered reports whether the path resolves at all.
	Registered bool
	// NeedsReply reports that the proxy reconstructs state from the
	// recorded reply parcel (e.g. the sensor proxies), which a oneway
	// method can never provide.
	NeedsReply bool
}

// ProxyResolver resolves an @replayproxy path against the replay engine's
// registry. A nil resolver disables proxy checks.
type ProxyResolver func(path string) ProxyInfo

// SpecConfig parameterizes AnalyzeSpecs.
type SpecConfig struct {
	Proxies ProxyResolver
}

// comparableGuardType reports whether @if signatures over the type are
// exact: the ArgString rendering is a canonical, device-independent value.
func comparableGuardType(t aidl.Type) bool {
	switch t {
	case aidl.TypeInt, aidl.TypeLong, aidl.TypeBool, aidl.TypeString:
		return true
	}
	return false
}

// AnalyzeSpecs runs every layer-1 check over the given specs.
func AnalyzeSpecs(specs []SpecSource, cfg SpecConfig) []Finding {
	var out []Finding
	for _, s := range specs {
		out = append(out, analyzeInterface(s, cfg)...)
	}
	Sort(out)
	return out
}

func analyzeInterface(s SpecSource, cfg SpecConfig) []Finding {
	itf := s.Itf
	var out []Finding
	add := func(check string, sev Severity, m *aidl.Method, pos aidl.Pos, format string, args ...any) {
		out = append(out, Finding{
			Check:     check,
			Severity:  sev,
			File:      s.Service,
			Line:      pos.Line,
			Col:       pos.Col,
			Interface: itf.Name,
			Method:    m.Name,
			Message:   fmt.Sprintf(format, args...),
		})
	}

	for _, m := range itf.Methods {
		spec := m.Record
		if spec == nil {
			// Coverage: a void method mutates service state (it returns
			// nothing, so it exists only for its side effect) yet carries
			// no @record — its effect is silently lost on migration.
			if m.Returns == aidl.TypeVoid {
				add("no-record", Warn, m, m.Pos,
					"state-mutating method (void return) carries no @record; its service-side effect is lost on migration")
			}
			continue
		}

		// Drop-list checks.
		seen := map[string]int{}
		for i, target := range spec.DropMethods {
			pos := spec.DropMethodPos(i)
			name := target
			if target == "this" {
				name = m.Name
			} else if target == m.Name {
				add("self-shadow", Error, m, pos,
					"@drop lists the method's own name %q; use the `this` keyword (literal self-drops never trigger pair annihilation)", target)
			} else {
				tm := itf.Method(target)
				if tm == nil {
					add("unknown-target", Error, m, pos, "@drop references unknown method %s", target)
					continue
				}
				if tm.Record == nil {
					add("dead-drop", Error, m, pos,
						"@drop target %s is never @record'ed: no log entry of it can exist, the rule cannot fire", target)
				}
			}
			seen[name]++
			if seen[name] == 2 { // report once per duplicated target
				add("self-shadow", Error, m, pos, "@drop lists target %s more than once", name)
			}
		}

		// Guard checks.
		if len(spec.Signatures) > 0 && len(spec.DropMethods) == 0 {
			add("orphan-guard", Error, m, spec.AtPos,
				"@if/@elif guards without @drop targets can never be evaluated")
		}
		for i, sig := range spec.Signatures {
			for j, arg := range sig {
				pos := spec.SignatureArgPos(i, j)
				param, _ := m.Param(arg)
				if param == nil {
					add("unknown-target", Error, m, pos, "@if argument %s is not a parameter", arg)
					continue
				}
				if !comparableGuardType(param.Type) {
					add("guard-type", Error, m, pos,
						"@if guards %s of incomparable type %s; signature comparison over its ArgString rendering is lossy (allowed: int, long, boolean, String)",
						arg, param.Type)
				}
				for _, target := range spec.DropMethods {
					if target == "this" || target == m.Name {
						continue
					}
					tm := itf.Method(target)
					if tm == nil {
						continue
					}
					tp, _ := tm.Param(arg)
					if tp != nil && tp.Type != param.Type {
						add("guard-type-mismatch", Error, m, pos,
							"@if argument %s is %s here but %s on drop target %s; the signature compares differently-encoded values",
							arg, param.Type, tp.Type, target)
					}
				}
			}
		}

		// Replay-proxy resolution.
		if spec.ReplayProxy != "" && cfg.Proxies != nil {
			info := cfg.Proxies(spec.ReplayProxy)
			if !info.Registered {
				add("proxy-unresolved", Error, m, spec.ProxyPos,
					"@replayproxy %s is not registered in the Adaptive Replay proxy registry", spec.ReplayProxy)
			} else if info.NeedsReply && m.OneWay {
				add("oneway-conflict", Error, m, spec.ProxyPos,
					"@replayproxy %s replays from the recorded reply parcel, but oneway calls record no reply", spec.ReplayProxy)
			}
		}
	}

	// Oneway/reply conflicts apply to every method, decorated or not.
	for _, m := range itf.Methods {
		if !m.OneWay {
			continue
		}
		if m.Returns != aidl.TypeVoid {
			add("oneway-conflict", Error, m, m.Pos,
				"oneway method returns %s; oneway transactions produce no reply parcel", m.Returns)
		}
		for _, p := range m.Params {
			if !p.In {
				add("oneway-conflict", Error, m, p.Pos,
					"oneway method has out parameter %s; there is no reply parcel to carry it back", p.Name)
			}
		}
	}

	out = append(out, dropCycles(s)...)
	return out
}

// dropCycles flags cycles of distinct methods dropping each other where at
// least one participant's drop list omits `this`. A cycle with `this` on
// every edge is the paper's pair-annihilation idiom (enable/disable,
// enqueue/cancel); without it, the cycle silently shadows state in
// call-order-dependent ways.
func dropCycles(s SpecSource) []Finding {
	itf := s.Itf
	adj := map[string][]string{}
	hasThis := map[string]bool{}
	for _, m := range itf.Methods {
		if m.Record == nil {
			continue
		}
		for _, t := range m.Record.DropMethods {
			if t == "this" {
				hasThis[m.Name] = true
				continue
			}
			if t != m.Name && itf.Method(t) != nil {
				adj[m.Name] = append(adj[m.Name], t)
			}
		}
	}

	var out []Finding
	reported := map[string]bool{}
	// Depth-first cycle search from each decorated method, in declaration
	// order for determinism. Interfaces are small (< 10 methods), so the
	// quadratic walk is irrelevant.
	for _, m := range itf.Methods {
		if m.Record == nil {
			continue
		}
		var path []string
		var dfs func(cur string)
		dfs = func(cur string) {
			for i, p := range path {
				if p == cur {
					cycle := append(append([]string(nil), path[i:]...), cur)
					key := canonicalCycle(cycle)
					if reported[key] {
						return
					}
					missing := ""
					for _, node := range cycle[:len(cycle)-1] {
						if !hasThis[node] {
							missing = node
							break
						}
					}
					if missing == "" {
						return // pair/ring annihilation idiom: fine
					}
					reported[key] = true
					mm := itf.Method(missing)
					pos := mm.Pos
					if mm.Record != nil && mm.Record.AtPos.IsValid() {
						pos = mm.Record.AtPos
					}
					out = append(out, Finding{
						Check: "drop-cycle", Severity: Error,
						File: s.Service, Line: pos.Line, Col: pos.Col,
						Interface: itf.Name, Method: missing,
						Message: fmt.Sprintf("drop cycle %s shadows state without pair annihilation: %s omits `this` from its drop list",
							strings.Join(cycle, " -> "), missing),
					})
					return
				}
			}
			path = append(path, cur)
			for _, next := range adj[cur] {
				dfs(next)
			}
			path = path[:len(path)-1]
		}
		dfs(m.Name)
	}
	return out
}

// canonicalCycle keys a cycle independent of its starting node.
func canonicalCycle(cycle []string) string {
	nodes := append([]string(nil), cycle[:len(cycle)-1]...)
	sort.Strings(nodes)
	return strings.Join(nodes, ",")
}
