package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The determinism pass: the wallclock check (direct wall-clock reads in
// virtual-clock packages) plus determinism-taint, its interprocedural
// closure. A function that — directly or through any chain of calls,
// including calls into other packages — reaches time.Now (or any other
// deny-listed wall-clock read) or an unseeded package-level math/rand
// function is *tainted*; calling a tainted function from a deterministic
// output path (cfg.TaintDirs) is flagged at the call site with the
// witness chain, so the leak is pinned where it enters the deterministic
// world rather than where the clock is read.
//
// Taint facts cross package boundaries through the driver's fact store:
// when internal/kernel exports "Stamp → time.Now", a call to
// kernel.Stamp inside internal/migration is flagged without migration
// ever seeing kernel's source. Packages outside VirtualClockDirs (obs,
// apps) use the wall clock by design and neither produce sources nor
// propagate taint. An allow-annotated source site
// (`//fluxvet:allow wallclock` / `determinism-taint`) is declared
// intentional — telemetry that never feeds the virtual clock — and does
// not taint its callers.

// wallClockDeny lists the time package selectors that read or depend on
// the wall clock. Pure types/constructors (time.Duration, time.Unix,
// time.Date, time.UnixMilli) are fine.
var wallClockDeny = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randDeny lists math/rand's package-level functions, which draw from
// the globally (and since Go 1.20, randomly) seeded source. A local
// rand.New(rand.NewSource(seed)) is deterministic and fine.
var randDeny = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// taintCall is one call site inside a function: either a direct
// nondeterminism source, a call to a package-local function/method, or a
// call into another module-internal package.
type taintCall struct {
	pos    token.Position
	source string // "time.Now", "math/rand.Intn", ... when a direct source
	// allowed marks a source covered by an allow directive: the finding
	// is still emitted (the driver suppresses it and marks the directive
	// used) but the site is declared intentional and does not taint.
	allowed bool
	local   string // package-local callee key ("Fn" or "Type.Method")
	extPkg  string // module-internal import path of an external callee
	extFn   string // external callee name
}

// taintFact is the exported per-function fact: the witness chain from
// the function to the nondeterminism source it reaches.
type taintFact string

func determinismPass(pc *passCtx) []Finding {
	wallDirs := map[string]bool{}
	for _, d := range pc.cfg.VirtualClockDirs {
		wallDirs[d] = true
	}
	taintDirs := map[string]bool{}
	for _, d := range pc.cfg.TaintDirs {
		taintDirs[d] = true
	}

	var out []Finding
	for _, u := range pc.units {
		if !wallDirs[u.dir] && !taintDirs[u.dir] {
			continue // obs/apps: wall clock by design, never taints
		}
		calls := collectTaintCalls(u)

		// Direct wallclock findings (virtual-clock discipline).
		if wallDirs[u.dir] {
			for _, cs := range calls {
				for _, c := range cs {
					if strings.HasPrefix(c.source, "time.") {
						out = append(out, Finding{
							Check: CheckWallClock, Severity: Error,
							File: c.pos.Filename, Line: c.pos.Line, Col: c.pos.Column,
							Message: fmt.Sprintf("%s in a virtual-clock package: route through kernel.Clock or annotate `%s wallclock — <reason>`",
								c.source, AllowDirective),
						})
					}
				}
			}
		}

		// Local fixpoint over the call graph, seeded by direct sources
		// and by imported cross-package facts.
		tainted := map[string]string{} // func key → witness chain
		for {
			changed := false
			for fn, cs := range calls {
				if _, done := tainted[fn]; done {
					continue
				}
				for _, c := range cs {
					w := c.witness(pc, tainted)
					if w != "" {
						tainted[fn] = w
						changed = true
						break
					}
				}
			}
			if !changed {
				break
			}
		}
		for fn, w := range tainted {
			pc.facts.Export(u.path, fn, taintFact(w))
		}

		// Taint findings: every call to a tainted function inside a
		// deterministic output path, plus direct unseeded-rand reads
		// (direct time reads are already wallclock findings).
		if !taintDirs[u.dir] {
			continue
		}
		for _, cs := range calls {
			for _, c := range cs {
				switch {
				case strings.HasPrefix(c.source, "math/rand."):
					out = append(out, Finding{
						Check: CheckDeterminismTaint, Severity: Error,
						File: c.pos.Filename, Line: c.pos.Line, Col: c.pos.Column,
						Message: fmt.Sprintf("%s draws from the unseeded global source in a deterministic path: use a seeded *rand.Rand, or annotate `%s determinism-taint — <reason>`",
							c.source, AllowDirective),
					})
				case c.source != "":
					// Direct time source: the wallclock finding covers it.
				case c.local != "":
					if w, ok := tainted[c.local]; ok {
						out = append(out, taintFinding(c, c.local, w))
					}
				case c.extPkg != "":
					if w, ok := pc.facts.Import(c.extPkg, c.extFn); ok {
						callee := c.extPkg[strings.LastIndex(c.extPkg, "/")+1:] + "." + c.extFn
						out = append(out, taintFinding(c, callee, string(w.(taintFact))))
					}
				}
			}
		}
	}
	return out
}

func taintFinding(c taintCall, callee, witness string) Finding {
	return Finding{
		Check: CheckDeterminismTaint, Severity: Error,
		File: c.pos.Filename, Line: c.pos.Line, Col: c.pos.Column,
		Message: fmt.Sprintf("call to %s leaks nondeterminism into a deterministic path (%s → %s): route through kernel.Clock / a seeded source, or annotate `%s determinism-taint — <reason>`",
			callee, callee, witness, AllowDirective),
	}
}

// witness resolves the call to a taint chain, or "" when clean. Chains
// are capped so mutually recursive helpers stay readable.
func (c taintCall) witness(pc *passCtx, tainted map[string]string) string {
	const maxChain = 160
	switch {
	case c.source != "":
		if c.allowed {
			return ""
		}
		return c.source
	case c.local != "":
		if w, ok := tainted[c.local]; ok {
			if len(w) > maxChain {
				w = w[:maxChain] + "…"
			}
			return c.local + " → " + w
		}
	case c.extPkg != "":
		if w, ok := pc.facts.Import(c.extPkg, c.extFn); ok {
			s := string(w.(taintFact))
			if len(s) > maxChain {
				s = s[:maxChain] + "…"
			}
			return c.extPkg[strings.LastIndex(c.extPkg, "/")+1:] + "." + c.extFn + " → " + s
		}
	}
	return ""
}

// collectTaintCalls builds the per-function call lists of one unit.
func collectTaintCalls(u *unit) map[string][]taintCall {
	p := u.pkg
	out := map[string][]taintCall{}
	for _, f := range p.files {
		// Fallback import-alias table for files whose type info is
		// incomplete: maps local name → import path for time/math-rand.
		aliases := map[string]string{}
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if path != "time" && path != "math/rand" {
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if spec.Name != nil {
				name = spec.Name.Name
			}
			if name != "_" && name != "." {
				aliases[name] = path
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				key := funcKey(d)
				out[key] = append(out[key], taintCallsIn(u, d.Body, aliases)...)
			case *ast.GenDecl:
				// Package-level var initializers run at init time; a
				// wall-clock read there leaks just the same. Nothing
				// calls the pseudo-key, so it cannot taint.
				if d.Tok == token.VAR {
					out["(package)"] = append(out["(package)"], taintCallsIn(u, d, aliases)...)
				}
			}
		}
	}
	return out
}

// funcKey names a FuncDecl: "Fn" for package-level functions,
// "Type.Method" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fd.Name.Name
			}
			return fd.Name.Name
		}
	}
}

// taintCallsIn classifies every call expression in a body.
func taintCallsIn(u *unit, body ast.Node, aliases map[string]string) []taintCall {
	p := u.pkg
	var out []taintCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pos := p.fset.Position(call.Pos())
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			// Package-local function call.
			if fn, ok := p.info.Uses[fun].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg() == p.typesPkg && fn.Signature().Recv() == nil {
				out = append(out, taintCall{pos: pos, local: fn.Name()})
			}
		case *ast.SelectorExpr:
			id, ok := fun.X.(*ast.Ident)
			if !ok {
				// Chained selector (a.b.M()): resolve as a method call.
				if c, ok := methodCall(p, fun, pos); ok {
					out = append(out, c)
				}
				return true
			}
			obj, resolved := p.info.Uses[id]
			if pn, ok := obj.(*types.PkgName); ok {
				path := pn.Imported().Path()
				out = append(out, classifyPkgCall(u, path, fun.Sel.Name, pos)...)
				return true
			}
			if !resolved {
				// Type info incomplete: fall back to the import-alias
				// table so a bare `time.Now()` never slips through.
				if path, ok := aliases[id.Name]; ok {
					out = append(out, classifyPkgCall(u, path, fun.Sel.Name, pos)...)
					return true
				}
			}
			// A value selector: method call on a local variable.
			if c, ok := methodCall(p, fun, pos); ok {
				out = append(out, c)
			}
		}
		return true
	})
	// Mark allow-annotated sources: they still produce a finding (the
	// driver suppresses it and marks the directive used) but are
	// declared intentional and must not taint callers.
	for i, c := range out {
		if c.source == "" {
			continue
		}
		check := CheckWallClock
		if strings.HasPrefix(c.source, "math/rand.") {
			check = CheckDeterminismTaint
		}
		out[i].allowed = p.isAllowed(c.pos, check)
	}
	return out
}

// classifyPkgCall resolves a pkg.Fn call: a nondeterminism source, a
// module-internal callee, or nothing interesting.
func classifyPkgCall(u *unit, path, name string, pos token.Position) []taintCall {
	switch {
	case path == "time" && wallClockDeny[name]:
		return []taintCall{{pos: pos, source: "time." + name}}
	case path == "math/rand" && randDeny[name]:
		return []taintCall{{pos: pos, source: "math/rand." + name}}
	case u.imports[path]:
		return []taintCall{{pos: pos, extPkg: path, extFn: name}}
	}
	return nil
}

// methodCall resolves x.M() to a package-local method key when the
// receiver's named type is declared in this package. Cross-package
// method calls degrade to a miss (stub types carry no methods).
func methodCall(p *sourcePkg, sel *ast.SelectorExpr, pos token.Position) (taintCall, bool) {
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != p.typesPkg {
		return taintCall{}, false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return taintCall{pos: pos, local: fn.Name()}, true
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return taintCall{}, false
	}
	return taintCall{pos: pos, local: named.Obj().Name() + "." + fn.Name()}, true
}
