package vet

import (
	"testing"
)

// TestDurabilitySeeded covers the three flagged shapes — discarded
// Write/Sync, deferred Close, tmp+rename outside atomicio — at exact
// positions, alongside the checked variants that must stay clean.
func TestDurabilitySeeded(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/record/persist.go": `package record

import "os"

func sloppy(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	f.Write(b)
	f.Sync()
	return nil
}

func careful(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() // best-effort cleanup on the error path: not flagged
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func swap(a, b string) error {
	return os.Rename(a, b)
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, DurabilityDirs: []string{"internal/record"}})
	got := findAll(fs, CheckDurability)
	if len(got) != 4 {
		t.Fatalf("want defer-Close, Write, Sync, and Rename flagged, got %v", fs)
	}
	type at struct{ line, col int }
	want := []at{{10, 8}, {11, 2}, {12, 2}, {33, 9}}
	for i, w := range want {
		if got[i].Line != w.line || got[i].Col != w.col {
			t.Fatalf("finding %d at %d:%d, want %d:%d (%v)", i, got[i].Line, got[i].Col, w.line, w.col, got)
		}
	}
}

// TestDurabilityAtomicioExempt: package atomicio IS the blessed
// tmp+rename implementation; its own os.Rename/os.WriteFile are fine.
func TestDurabilityAtomicioExempt(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/atomicio/write.go": `package atomicio

import "os"

func commit(tmp, final string) error {
	return os.Rename(tmp, final)
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, DurabilityDirs: []string{"internal/atomicio"}})
	if len(fs) != 0 {
		t.Fatalf("atomicio's own rename is the implementation, got %v", fs)
	}
}

// TestDurabilityAllowRoundTrip: the directive suppresses the finding and
// is marked used.
func TestDurabilityAllowRoundTrip(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/seglog/tmp.go": `package seglog

import "os"

func scratch(a, b string) {
	os.Rename(a, b) //fluxvet:allow durability — fixture: scratch file, durability not required
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, DurabilityDirs: []string{"internal/seglog"}})
	if len(fs) != 0 {
		t.Fatalf("annotated rename should suppress cleanly, got %v", fs)
	}
}
