package vet

import (
	"strings"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/record"
)

// notifSrc is the Figure 7 shape: cancel(id) annihilates against the
// enqueue of the same id.
const notifSrc = `
interface INotificationManager {
	@record
	void enqueueNotification(int id, in Notification notification);

	@record {
		@drop this, enqueueNotification;
		@if id;
	}
	void cancelNotification(int id);
}
`

func lintFixture(t *testing.T, entries []*record.Entry, opts LogLintOptions) []Finding {
	t.Helper()
	itf := aidl.MustParse(notifSrc)
	return LintEntries("com.app", entries, map[string]*aidl.Interface{itf.Name: itf}, opts)
}

// entry builds a log entry for the fixture interface with marshalled args.
func entry(t *testing.T, itf *aidl.Interface, seq uint64, method string, h binder.Handle, args ...any) *record.Entry {
	t.Helper()
	m := itf.Method(method)
	if m == nil {
		t.Fatalf("no method %s", method)
	}
	p, err := aidl.MarshalCallArgs(m, args...)
	if err != nil {
		t.Fatalf("marshalling %s: %v", method, err)
	}
	return &record.Entry{
		Seq: seq, App: "com.app", Interface: itf.Name, Method: method,
		Code: m.Code, Handle: h, Data: p.Marshal(),
	}
}

func TestLintLogCleanSurvivors(t *testing.T) {
	itf := aidl.MustParse(notifSrc)
	// Two enqueues of different ids, then a cancel of a third id that
	// matched nothing: everything legitimately survives.
	entries := []*record.Entry{
		entry(t, itf, 1, "enqueueNotification", 3, int32(1), aidl.Object("a")),
		entry(t, itf, 2, "enqueueNotification", 3, int32(2), aidl.Object("b")),
		entry(t, itf, 3, "cancelNotification", 3, int32(9)),
	}
	if fs := lintFixture(t, entries, LogLintOptions{}); len(fs) != 0 {
		t.Fatalf("clean log produced findings: %v", fs)
	}
}

func TestLintLogPruneDrift(t *testing.T) {
	itf := aidl.MustParse(notifSrc)
	// cancel(id=1) should have pruned enqueue(id=1); a log where both
	// survive has drifted from the specs.
	entries := []*record.Entry{
		entry(t, itf, 1, "enqueueNotification", 3, int32(1), aidl.Object("a")),
		entry(t, itf, 2, "cancelNotification", 3, int32(1)),
	}
	fs := lintFixture(t, entries, LogLintOptions{})
	got := findAll(fs, "prune-drift")
	if len(got) != 2 {
		t.Fatalf("want prune-drift on the unpruned enqueue and the unsuppressed cancel, got %v", fs)
	}
	// First finding points at the entry that should have been pruned
	// (seq 1), second at the self-suppressed trigger (seq 2).
	if got[0].Line != 1 || got[0].Method != "enqueueNotification" {
		t.Fatalf("pruned-survivor finding = %+v", got[0])
	}
	if got[1].Line != 2 || !strings.Contains(got[1].Message, "annihilation") {
		t.Fatalf("suppressed-trigger finding = %+v", got[1])
	}
}

func TestLintLogUnknownInterfaceMethodCode(t *testing.T) {
	itf := aidl.MustParse(notifSrc)
	good := entry(t, itf, 1, "enqueueNotification", 3, int32(1), aidl.Object("a"))
	ghostItf := &record.Entry{Seq: 2, App: "com.app", Interface: "IGhost", Method: "boo", Code: 1}
	ghostMethod := &record.Entry{Seq: 3, App: "com.app", Interface: itf.Name, Method: "boo", Code: 1}
	badCode := entry(t, itf, 4, "cancelNotification", 3, int32(9))
	badCode.Code = 99

	fs := lintFixture(t, []*record.Entry{good, ghostItf, ghostMethod, badCode}, LogLintOptions{})
	got := findAll(fs, "log-unknown")
	if len(got) != 3 {
		t.Fatalf("want 3 log-unknown findings, got %v", fs)
	}
	if got[0].Line != 2 || !strings.Contains(got[0].Message, "IGhost") {
		t.Fatalf("unknown-interface finding = %+v", got[0])
	}
	if got[1].Line != 3 || !strings.Contains(got[1].Message, "boo") {
		t.Fatalf("unknown-method finding = %+v", got[1])
	}
	if got[2].Line != 4 || !strings.Contains(got[2].Message, "99") {
		t.Fatalf("code-mismatch finding = %+v", got[2])
	}
}

func TestLintLogUnrecordedEntry(t *testing.T) {
	// An entry for a method with no @record: the recorder should never
	// have appended it — unless the log came from the full-record
	// ablation.
	src := "interface I {\n\t@record\n\tvoid a(int x);\n\tvoid b(int x);\n}\n"
	itf := aidl.MustParse(src)
	specs := map[string]*aidl.Interface{itf.Name: itf}
	entries := []*record.Entry{entry(t, itf, 1, "b", 3, int32(1))}

	fs := LintEntries("com.app", entries, specs, LogLintOptions{})
	if got := findAll(fs, "unrecorded-entry"); len(got) != 1 {
		t.Fatalf("want unrecorded-entry, got %v", fs)
	}
	fs = LintEntries("com.app", entries, specs, LogLintOptions{FullRecord: true})
	if got := findAll(fs, "unrecorded-entry"); len(got) != 0 {
		t.Fatalf("FullRecord should disable the check: %v", got)
	}
}

func TestLintLogReplayHazard(t *testing.T) {
	itf := aidl.MustParse(notifSrc)
	// Entry on handle 7, but the CRIA image only restores handle 3.
	e := entry(t, itf, 1, "enqueueNotification", 7, int32(1), aidl.Object("a"))
	fs := lintFixture(t, []*record.Entry{e}, LogLintOptions{Handles: map[binder.Handle]bool{3: true}})
	got := findAll(fs, "replay-hazard")
	if len(got) != 1 || !strings.Contains(got[0].Message, "7") {
		t.Fatalf("want replay-hazard on handle 7, got %v", fs)
	}
	// With the handle restored, the same entry is clean.
	fs = lintFixture(t, []*record.Entry{e}, LogLintOptions{Handles: map[binder.Handle]bool{7: true}})
	if got := findAll(fs, "replay-hazard"); len(got) != 0 {
		t.Fatalf("restored handle wrongly flagged: %v", got)
	}
	// Without a handle table, the check is off.
	fs = lintFixture(t, []*record.Entry{e}, LogLintOptions{})
	if got := findAll(fs, "replay-hazard"); len(got) != 0 {
		t.Fatalf("nil Handles should disable the check: %v", got)
	}
}

func TestLintLogEmbeddedHandleHazard(t *testing.T) {
	// The request parcel of a binder-typed argument embeds a handle the
	// image does not restore: replay would transact into a hole.
	src := "interface I {\n\t@record\n\tvoid attach(IBinder token);\n}\n"
	itf := aidl.MustParse(src)
	e := entry(t, itf, 1, "attach", 3, binder.Handle(42))
	fs := LintEntries("com.app", []*record.Entry{e},
		map[string]*aidl.Interface{itf.Name: itf},
		LogLintOptions{Handles: map[binder.Handle]bool{3: true}})
	got := findAll(fs, "replay-hazard")
	if len(got) != 1 || !strings.Contains(got[0].Message, "42") {
		t.Fatalf("want replay-hazard for embedded handle 42, got %v", fs)
	}
}

func TestLintLogSeqOrder(t *testing.T) {
	itf := aidl.MustParse(notifSrc)
	entries := []*record.Entry{
		entry(t, itf, 5, "enqueueNotification", 3, int32(1), aidl.Object("a")),
		entry(t, itf, 5, "enqueueNotification", 3, int32(2), aidl.Object("b")),
	}
	fs := lintFixture(t, entries, LogLintOptions{})
	got := findAll(fs, "log-order")
	if len(got) != 1 || !strings.Contains(got[0].Message, "5") {
		t.Fatalf("want log-order for the duplicated seq, got %v", fs)
	}
}

func TestLintLogWholeLog(t *testing.T) {
	// LintLog walks every app shard of a live record.Log.
	itf := aidl.MustParse(notifSrc)
	log := record.NewLog()
	e := entry(t, itf, 1, "enqueueNotification", 3, int32(1), aidl.Object("a"))
	bad := &record.Entry{Seq: 2, App: "com.other", Interface: "IGhost", Method: "boo", Code: 1}
	log.Append(e)
	log.Append(bad)
	fs := LintLog(log, map[string]*aidl.Interface{itf.Name: itf}, LogLintOptions{})
	got := findAll(fs, "log-unknown")
	if len(got) != 1 || got[0].File != "log:com.other" {
		t.Fatalf("want one log-unknown in com.other's slice, got %v", fs)
	}
}
