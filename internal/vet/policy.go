package vet

// DefaultSpecWaivers is the shipped policy for the internal/services
// decorator specs: every intentional deviation from the layer-1 checks,
// each with its rationale. fluxvet applies these by default; a waiver that
// stops matching (because the spec changed) surfaces as a stale-waiver
// finding, so this list cannot drift from the specs silently.
func DefaultSpecWaivers() []Waiver {
	return []Waiver{
		// Paper Figure 9: the alarm @if signature guards the PendingIntent
		// `operation` argument. In this simulation parcelables are
		// aidl.Object canonical strings, so the ArgString comparison is
		// exact (EntryString renders the full serialized form), unlike
		// handles or fds whose numeric renderings are device-local.
		{Check: "guard-type", Interface: "IAlarmManager", Method: "set",
			Reason: "paper Fig. 9 guards the PendingIntent operation; aidl.Object canonical form makes the comparison exact"},
		{Check: "guard-type", Interface: "IAlarmManager", Method: "remove",
			Reason: "paper Fig. 9 guards the PendingIntent operation; aidl.Object canonical form makes the comparison exact"},

		// Intentionally unrecorded state-mutating methods: their effects
		// are device-local (never migrate) or transient (nothing to
		// replay). Each matches the paper's Table 2 decoration set.
		{Check: "no-record", Interface: "IAlarmManager", Method: "setTime",
			Reason: "sets the device wall clock: device-local, must not replay onto a guest"},
		{Check: "no-record", Interface: "IAlarmManager", Method: "setTimeZone",
			Reason: "device-local time zone, must not replay onto a guest"},
		{Check: "no-record", Interface: "IWifiManager", Method: "startScan",
			Reason: "transient scan trigger; results are not durable service state"},
		{Check: "no-record", Interface: "IPowerManager", Method: "goToSleep",
			Reason: "device-local power transition; replaying would blank the guest screen"},
		{Check: "no-record", Interface: "IPowerManager", Method: "wakeUp",
			Reason: "device-local power transition"},
		{Check: "no-record", Interface: "IActivityManager", Method: "broadcastIntent",
			Reason: "transient delivery; receivers re-register via recorded registerReceiver calls"},
		{Check: "no-record", Interface: "IActivityManager", Method: "moveTaskToBack",
			Reason: "activity-stack order migrates inside the CRIA image, not via replay"},
		{Check: "no-record", Interface: "IActivityManager", Method: "setProcessImportance",
			Reason: "scheduler hint re-derived by the guest's own activity manager"},
		{Check: "no-record", Interface: "ISensorEventConnection", Method: "destroy",
			Reason: "tears the connection down; a destroyed connection has no state to rebuild"},
	}
}
