package vet

import (
	"encoding/json"
	"sort"
)

// Machine-readable finding renderers for `fluxvet -format json|sarif`.
// Both render from the same sorted finding slice, so a double render of
// the same input is byte-identical — CI diffs and artifact uploads never
// churn on map order. The JSON form is the tool's own stable schema; the
// SARIF form is a minimal SARIF 2.1.0 document (one run, one rule per
// distinct check) that code-scanning UIs ingest directly.

// jsonFinding is the stable JSON wire form of one Finding.
type jsonFinding struct {
	Check     string `json:"check"`
	Severity  string `json:"severity"`
	File      string `json:"file,omitempty"`
	Line      int    `json:"line,omitempty"`
	Col       int    `json:"col,omitempty"`
	Interface string `json:"interface,omitempty"`
	Method    string `json:"method,omitempty"`
	Message   string `json:"message"`
}

// RenderJSON renders findings as fluxvet's own JSON schema: a versioned
// envelope with the finding count and the findings in input order (the
// caller sorts). The output ends in a newline and is byte-stable for a
// given input.
func RenderJSON(fs []Finding) []byte {
	doc := struct {
		Version  int           `json:"version"`
		Count    int           `json:"count"`
		Findings []jsonFinding `json:"findings"`
	}{Version: 1, Count: len(fs), Findings: []jsonFinding{}}
	for _, f := range fs {
		doc.Findings = append(doc.Findings, jsonFinding{
			Check: f.Check, Severity: f.Severity.String(),
			File: f.File, Line: f.Line, Col: f.Col,
			Interface: f.Interface, Method: f.Method,
			Message: f.Message,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Finding holds only strings and ints; marshalling cannot fail.
		panic(err)
	}
	return append(out, '\n')
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers read.
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RenderSARIF renders findings as a minimal SARIF 2.1.0 document: one
// run, one rule per distinct check (sorted by id), one result per
// finding in input order. Errors map to level "error", warnings to
// "warning". Findings without a positive line carry no region (SARIF
// requires startLine >= 1).
func RenderSARIF(fs []Finding) []byte {
	ruleSet := map[string]bool{}
	for _, f := range fs {
		ruleSet[f.Check] = true
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifText{Text: "fluxvet check " + id},
		})
	}

	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		level := "error"
		if f.Severity == Warn {
			level = "warning"
		}
		r := sarifResult{RuleID: f.Check, Level: level, Message: sarifText{Text: f.Message}}
		if f.File != "" {
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: f.File}}
			if f.Line > 0 {
				region := &sarifRegion{StartLine: f.Line}
				if f.Col > 0 {
					region.StartColumn = f.Col
				}
				phys.Region = region
			}
			r.Locations = []sarifLocation{{PhysicalLocation: phys}}
		}
		results = append(results, r)
	}

	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fluxvet", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}
