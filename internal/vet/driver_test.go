package vet

import (
	"reflect"
	"strings"
	"testing"
)

// fixture with one violation per selectable pass family, for selection
// and determinism tests.
func mixedFixture(t *testing.T) SourceConfig {
	t.Helper()
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/a.go": `package netsim

import "time"

var t0 = time.Now()

func Render(m map[string]int) string {
	var s string
	for k := range m {
		s += k
	}
	return s
}
`,
	})
	return SourceConfig{
		Root:              root,
		VirtualClockDirs:  []string{"internal/netsim"},
		DeterministicDirs: []string{"internal/netsim"},
	}
}

func TestDriverOnlyRestrictsChecks(t *testing.T) {
	cfg := mixedFixture(t)
	fs, _, err := RunSourceChecks(cfg, []string{CheckMapRange}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Check != CheckMapRange {
		t.Fatalf("-only maprange should yield exactly the maprange finding, got %v", fs)
	}
}

func TestDriverSkipRemovesChecks(t *testing.T) {
	cfg := mixedFixture(t)
	fs, _, err := RunSourceChecks(cfg, nil, []string{CheckWallClock})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Check == CheckWallClock {
			t.Fatalf("-skip wallclock should drop wallclock findings, got %v", fs)
		}
	}
	if len(findAll(fs, CheckMapRange)) != 1 {
		t.Fatalf("other checks must survive a skip, got %v", fs)
	}
}

func TestDriverSelectionErrors(t *testing.T) {
	cfg := mixedFixture(t)
	if _, _, err := RunSourceChecks(cfg, []string{CheckMapRange}, []string{CheckWallClock}); err == nil {
		t.Fatal("only+skip together must error")
	}
	if _, _, err := RunSourceChecks(cfg, []string{"nosuch"}, nil); err == nil {
		t.Fatal("unknown check in only must error")
	}
	if _, _, err := RunSourceChecks(cfg, nil, []string{"nosuch"}); err == nil {
		t.Fatal("unknown check in skip must error")
	}
}

// TestDriverTimings: every selected pass reports a timing row; a
// restricted run reports only its pass.
func TestDriverTimings(t *testing.T) {
	cfg := mixedFixture(t)
	_, timings, err := RunSourceChecks(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tm := range timings {
		names = append(names, tm.Pass)
		if tm.Packages == 0 {
			t.Fatalf("pass %s reports zero packages", tm.Pass)
		}
	}
	want := []string{"determinism", "maprange", "lockorder", "durability", "wiredrift"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("full run timings = %v, want %v", names, want)
	}
	_, timings, err = RunSourceChecks(cfg, []string{CheckMapRange}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 1 || timings[0].Pass != "maprange" {
		t.Fatalf("restricted run timings = %v", timings)
	}
}

// TestDriverDeterministicOutput: the passes run concurrently, but the
// merged finding list is identical across runs.
func TestDriverDeterministicOutput(t *testing.T) {
	cfg := mixedFixture(t)
	first, _, err := RunSourceChecks(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _, err := RunSourceChecks(cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n%v\nvs\n%v", i, again, first)
		}
	}
}

// TestDriverUnknownAllow: a directive naming a check that does not exist
// is an error finding (a typo would otherwise silently waive nothing).
func TestDriverUnknownAllow(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/a.go": `package netsim

//fluxvet:allow wallclocks — typo in the check name
var x = 1
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}})
	got := findAll(fs, CheckUnknownAllow)
	if len(got) != 1 || got[0].Line != 3 || got[0].Severity != Error {
		t.Fatalf("want unknown-allow error at line 3, got %v", fs)
	}
	if !strings.Contains(got[0].Message, "wallclocks") {
		t.Fatalf("message should name the bad check: %s", got[0].Message)
	}
}

// TestDriverStaleAllow: a directive for a real check that suppresses
// nothing is reported, and only when its check is enabled (a -only run
// must not call other checks' directives stale).
func TestDriverStaleAllow(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/a.go": `package netsim

//fluxvet:allow wallclock — nothing here reads a clock
var x = 1
`,
	})
	cfg := SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}}
	fs := runFixture(t, cfg)
	got := findAll(fs, CheckStaleAllow)
	if len(got) != 1 || got[0].Line != 3 || got[0].Severity != Warn {
		t.Fatalf("want stale-allow warn at line 3, got %v", fs)
	}
	fs, _, err := RunSourceChecks(cfg, []string{CheckMapRange}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("wallclock disabled: its directive must not be judged stale, got %v", fs)
	}
}

// TestSourceCheckNamesStable pins the selectable check list — CLI flags,
// docs, and CI reference these names.
func TestSourceCheckNamesStable(t *testing.T) {
	want := []string{
		CheckDeterminismTaint, CheckDurability, CheckLockOrder,
		CheckMapRange, CheckWallClock, CheckWireDrift,
	}
	if got := SourceCheckNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SourceCheckNames() = %v, want %v", got, want)
	}
}
