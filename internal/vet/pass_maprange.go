package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The maprange pass flags bare map iteration in deterministic packages
// unless the loop body is provably order-independent: Go randomizes map
// order, so a map range feeding Report fields, metrics, or rendered
// tables produces run-to-run diffs. Collection loops (append-only),
// integer accumulation, and map-to-map transforms are order-independent
// and allowed; everything else needs sorted keys or an explicit
// `//fluxvet:allow maprange` comment.

func mapRangePass(pc *passCtx) []Finding {
	var out []Finding
	for _, u := range pc.units {
		if !pc.report(u) {
			continue
		}
		p := u.pkg
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderIndependentBody(p, rng) {
					return true
				}
				pos := p.fset.Position(rng.Pos())
				out = append(out, Finding{
					Check: CheckMapRange, Severity: Error,
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("bare map iteration in a deterministic path: collect and sort the keys, or annotate `%s maprange — <reason>`",
						AllowDirective),
				})
				return true
			})
		}
	}
	return out
}

// orderIndependentBody reports whether every statement of the range body
// is order-independent: appending to a slice (collect-then-sort idiom),
// integer accumulation (+=, ++, --; float accumulation is NOT commutative
// in IEEE754 and stays flagged), deleting from or storing into another
// map, an integer counter assignment, or the membership-test idiom
// `if cond { return <constants> }` — bailing out with the same constant
// from whichever iteration trips the condition yields the same result in
// any order.
func orderIndependentBody(p *sourcePkg, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true
	}
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !integerExpr(p, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !orderIndependentAssign(p, s) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) is order-independent.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "delete" {
				return false
			}
		case *ast.IfStmt:
			if !constantGuardReturn(s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// constantGuardReturn matches `if cond { return <constant literals> }`
// with no else and no init statement beyond the condition: an
// early-return of constants is the same constant regardless of which
// iteration triggers it.
func constantGuardReturn(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	ret, ok := s.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		switch e := r.(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if e.Name != "true" && e.Name != "false" && e.Name != "nil" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderIndependentAssign(p *sourcePkg, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative only over integers; float addition is
		// order-dependent (and string += builds order-dependent output).
		return len(s.Lhs) == 1 && integerExpr(p, s.Lhs[0])
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// x = append(x, ...) — the collect-then-sort idiom.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				return true
			}
		}
		// m2[k] = v — building another map is order-independent.
		if _, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			if tv, ok := p.info.Types[s.Lhs[0].(*ast.IndexExpr).X]; ok && tv.Type != nil {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
		}
		return false
	}
	return false
}

func integerExpr(p *sourcePkg, e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
