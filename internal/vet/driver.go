package vet

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The layer-3 pass driver: a miniature go/analysis multichecker built on
// the standard library only.
//
// The driver loads and type-checks the union of every configured
// directory scope exactly once, topologically sorts the resulting
// package units along module-internal import edges, and then runs every
// selected pass concurrently — one goroutine per pass, each visiting
// the units in dependency order so a pass's per-package facts (taint
// summaries, lock sets, magic registries) are always exported by an
// imported package before an importer asks for them. Findings from all
// passes merge, flow through the //fluxvet:allow directive filter (which
// marks directives used), and gain the driver's own hygiene findings:
// stale-allow for a directive that suppressed nothing and unknown-allow
// for a directive naming a check that does not exist.

// unit is one loaded package: the parse/type-check result plus its place
// in the module's import graph.
type unit struct {
	// dir is the Root-relative package directory ("internal/record").
	dir string
	// path is the module import path ("flux/internal/record").
	path string
	pkg  *sourcePkg
	// imports holds the module-internal import paths of the unit's files.
	imports map[string]bool
}

// Facts is a per-pass store of exported per-package facts, keyed by
// (package import path, object name). Each pass owns a private instance
// and is the only goroutine touching it, so no locking is needed; the
// topological unit order guarantees an importer sees its dependencies'
// exports.
type Facts struct {
	m map[factKey]any
}

type factKey struct{ pkg, name string }

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: map[factKey]any{}} }

// Export records a fact for (pkg, name), overwriting any previous value.
func (f *Facts) Export(pkg, name string, v any) { f.m[factKey{pkg, name}] = v }

// Import retrieves the fact exported for (pkg, name).
func (f *Facts) Import(pkg, name string) (any, bool) {
	v, ok := f.m[factKey{pkg, name}]
	return v, ok
}

// passCtx is what a pass sees: the loaded units in topological order,
// its private fact store, and its reporting scope.
type passCtx struct {
	cfg   SourceConfig
	units []*unit
	facts *Facts
	// scope is the set of dirs the pass reports findings in. Fact
	// gathering may range wider (every loaded unit); report gates on it.
	scope map[string]bool
}

// report says whether findings in u's directory should be emitted.
func (pc *passCtx) report(u *unit) bool { return pc.scope[u.dir] }

// passDef is one registered pass: a name, the checks it can emit, its
// reporting scope, and the analysis body. run is called once per driver
// invocation with every unit; interprocedural passes iterate the units
// (already in dependency order), export facts as they go, and may do a
// whole-program reconciliation at the end before returning findings.
type passDef struct {
	name   string
	checks []string
	scope  func(cfg SourceConfig) []string
	run    func(pc *passCtx) []Finding
}

// passes is the driver's registry, in stable order.
func passRegistry() []passDef {
	return []passDef{
		{
			name:   "determinism",
			checks: []string{CheckWallClock, CheckDeterminismTaint},
			scope: func(cfg SourceConfig) []string {
				return append(append([]string(nil), cfg.VirtualClockDirs...), cfg.TaintDirs...)
			},
			run: determinismPass,
		},
		{
			name:   "maprange",
			checks: []string{CheckMapRange},
			scope:  func(cfg SourceConfig) []string { return cfg.DeterministicDirs },
			run:    mapRangePass,
		},
		{
			name:   "lockorder",
			checks: []string{CheckLockOrder},
			scope:  func(cfg SourceConfig) []string { return cfg.LockDirs },
			run:    lockOrderPass,
		},
		{
			name:   "durability",
			checks: []string{CheckDurability},
			scope:  func(cfg SourceConfig) []string { return cfg.DurabilityDirs },
			run:    durabilityPass,
		},
		{
			name:   "wiredrift",
			checks: []string{CheckWireDrift},
			scope:  func(cfg SourceConfig) []string { return cfg.WireDirs },
			run:    wireDriftPass,
		},
	}
}

// PassTiming reports one pass's wall-clock cost over the whole package
// graph (the `fluxvet -timings` / `make lint` summary).
type PassTiming struct {
	Pass     string
	Wall     time.Duration
	Packages int
	Findings int
}

// RunSourceChecks runs the layer-3 driver with an optional check
// selection: only restricts the run to the named checks, skip removes
// checks from the full set (at most one of the two may be non-empty;
// names must come from SourceCheckNames). It returns the merged,
// waiver-filtered findings plus per-pass timings.
func RunSourceChecks(cfg SourceConfig, only, skip []string) ([]Finding, []PassTiming, error) {
	enabled, err := selectChecks(only, skip)
	if err != nil {
		return nil, nil, err
	}
	units, err := loadUnits(cfg)
	if err != nil {
		return nil, nil, err
	}

	type passResult struct {
		findings []Finding
		timing   PassTiming
	}
	defs := passRegistry()
	results := make([]passResult, len(defs))
	var wg sync.WaitGroup
	for i, def := range defs {
		wants := false
		for _, c := range def.checks {
			wants = wants || enabled[c]
		}
		if !wants {
			continue
		}
		wg.Add(1)
		go func(i int, def passDef) {
			defer wg.Done()
			scope := map[string]bool{}
			for _, d := range def.scope(cfg) {
				scope[d] = true
			}
			pc := &passCtx{cfg: cfg, units: units, facts: NewFacts(), scope: scope}
			start := time.Now() //fluxvet:allow wallclock — per-pass timing telemetry for `fluxvet -timings`; never feeds an analysis
			fs := def.run(pc)
			results[i] = passResult{
				findings: fs,
				timing: PassTiming{
					Pass: def.name, Wall: time.Since(start), //fluxvet:allow wallclock — pairs with the timing start above
					Packages: len(units), Findings: len(fs),
				},
			}
		}(i, def)
	}
	wg.Wait()

	var raw []Finding
	var timings []PassTiming
	for i := range results {
		if results[i].timing.Pass == "" {
			continue
		}
		raw = append(raw, results[i].findings...)
		timings = append(timings, results[i].timing)
	}

	out := filterAllows(units, raw, enabled)
	Sort(out)
	return out, timings, nil
}

// selectChecks resolves -only/-skip into the enabled check set.
func selectChecks(only, skip []string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, c := range SourceCheckNames() {
		known[c] = true
	}
	if len(only) > 0 && len(skip) > 0 {
		return nil, fmt.Errorf("vet: only and skip are mutually exclusive")
	}
	for _, c := range append(append([]string(nil), only...), skip...) {
		if !known[c] {
			return nil, fmt.Errorf("vet: unknown check %q (known: %s)", c, strings.Join(SourceCheckNames(), ", "))
		}
	}
	enabled := map[string]bool{}
	switch {
	case len(only) > 0:
		for _, c := range only {
			enabled[c] = true
		}
	default:
		for _, c := range SourceCheckNames() {
			enabled[c] = true
		}
		for _, c := range skip {
			delete(enabled, c)
		}
	}
	return enabled, nil
}

// filterAllows suppresses findings covered by an allow directive (marking
// the directive used), drops findings of disabled checks, and appends the
// directive-hygiene findings: unknown-allow for directives naming a check
// that does not exist, stale-allow for directives of enabled checks that
// suppressed nothing this run.
func filterAllows(units []*unit, raw []Finding, enabled map[string]bool) []Finding {
	var out []Finding
	byFile := map[string]*sourcePkg{}
	for _, u := range units {
		for file := range u.pkg.allowIdx {
			byFile[file] = u.pkg
		}
	}
	for _, f := range raw {
		if !enabled[f.Check] {
			continue
		}
		if p := byFile[f.File]; p != nil {
			if d := p.allowFor(f.File, f.Line, f.Check); d != nil {
				d.used = true
				continue
			}
		}
		out = append(out, f)
	}
	known := map[string]bool{}
	for _, c := range SourceCheckNames() {
		known[c] = true
	}
	for _, u := range units {
		for _, d := range u.pkg.directives {
			switch {
			case !known[d.check]:
				out = append(out, Finding{
					Check: CheckUnknownAllow, Severity: Error,
					File: d.file, Line: d.line,
					Message: fmt.Sprintf("allow directive names unknown check %q (known: %s)",
						d.check, strings.Join(SourceCheckNames(), ", ")),
				})
			case enabled[d.check] && !d.used:
				out = append(out, Finding{
					Check: CheckStaleAllow, Severity: Warn,
					File: d.file, Line: d.line,
					Message: fmt.Sprintf("allow directive for %q suppresses nothing; delete it", d.check),
				})
			}
		}
	}
	return out
}

// loadUnits parses and type-checks the union of every configured
// directory scope exactly once and returns the units topologically
// sorted along module-internal import edges (dependencies first, ties
// broken by directory name so the order is deterministic).
func loadUnits(cfg SourceConfig) ([]*unit, error) {
	dirSet := map[string]bool{}
	for _, list := range [][]string{
		cfg.VirtualClockDirs, cfg.DeterministicDirs, cfg.TaintDirs,
		cfg.LockDirs, cfg.DurabilityDirs, cfg.WireDirs,
	} {
		for _, d := range list {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	module := modulePath(cfg.Root)
	// One FileSet and one (source-resolving, cached) stdlib importer are
	// shared across packages so the standard library is type-checked once.
	fset := token.NewFileSet()
	imp := newPermissiveImporter(fset)
	var units []*unit
	byPath := map[string]*unit{}
	for _, dir := range dirs {
		pkg, err := loadPackage(fset, imp, filepath.Join(cfg.Root, dir), cfg.IncludeTests)
		if err != nil {
			return nil, fmt.Errorf("vet: loading %s: %w", dir, err)
		}
		if pkg == nil {
			continue // no Go files
		}
		u := &unit{
			dir:     dir,
			path:    module + "/" + filepath.ToSlash(dir),
			pkg:     pkg,
			imports: map[string]bool{},
		}
		for _, f := range pkg.files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if strings.HasPrefix(path, module+"/") {
					u.imports[path] = true
				}
			}
		}
		units = append(units, u)
		byPath[u.path] = u
	}

	// Kahn's algorithm with a sorted ready set: dependencies first.
	indeg := map[*unit]int{}
	dependents := map[*unit][]*unit{}
	for _, u := range units {
		for imp := range u.imports {
			if dep, ok := byPath[imp]; ok {
				indeg[u]++
				dependents[dep] = append(dependents[dep], u)
			}
		}
	}
	ready := make([]*unit, 0, len(units))
	for _, u := range units {
		if indeg[u] == 0 {
			ready = append(ready, u)
		}
	}
	var sorted []*unit
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i].dir < ready[j].dir })
		u := ready[0]
		ready = ready[1:]
		sorted = append(sorted, u)
		for _, dep := range dependents[u] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(sorted) != len(units) {
		// An import cycle (impossible in a compiling module) — fall back
		// to lexical order rather than dropping packages.
		sort.Slice(units, func(i, j int) bool { return units[i].dir < units[j].dir })
		return units, nil
	}
	return sorted, nil
}

// modulePath reads the module directive from Root's go.mod, defaulting
// to "flux" when the file is missing or malformed.
func modulePath(root string) string {
	f, err := os.Open(filepath.Join(root, "go.mod"))
	if err != nil {
		return "flux"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "flux"
}
