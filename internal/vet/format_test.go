package vet

// Golden-file tests for the machine-readable renderers: a fixed finding
// slice renders byte-identically on every run and matches the goldens
// committed under testdata/. Regenerate with:
//
//	go test ./internal/vet -run TestRender -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenFindings exercises every field combination the renderers handle:
// positioned source findings, a column-less driver finding, a spec
// finding with interface/method context and no line, and both severities.
func goldenFindings() []Finding {
	fs := []Finding{
		{
			Check: CheckWallClock, Severity: Error,
			File: "internal/migration/engine.go", Line: 41, Col: 14,
			Message: "time.Now in a virtual-clock package: route through kernel.Clock",
		},
		{
			Check: CheckStaleAllow, Severity: Warn,
			File: "internal/lab/stats.go", Line: 60,
			Message: `allow directive for "maprange" suppresses nothing; delete it`,
		},
		{
			Check: "dead-drop", Severity: Error,
			File: "alarm", Line: 12, Col: 3,
			Interface: "IAlarmManager", Method: "set",
			Message: "@drop names a method that never records",
		},
		{
			Check: "record-coverage", Severity: Warn,
			Interface: "IAudioService", Method: "*",
			Message: "state-mutating methods carry no @record",
		},
	}
	Sort(fs)
	return fs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestRenderJSONGolden(t *testing.T) {
	got := RenderJSON(goldenFindings())
	if !json.Valid(got) {
		t.Fatalf("RenderJSON produced invalid JSON:\n%s", got)
	}
	if again := RenderJSON(goldenFindings()); !bytes.Equal(got, again) {
		t.Fatal("RenderJSON is not byte-stable across renders")
	}
	checkGolden(t, "findings.golden.json", got)
}

func TestRenderSARIFGolden(t *testing.T) {
	got := RenderSARIF(goldenFindings())
	if !json.Valid(got) {
		t.Fatalf("RenderSARIF produced invalid JSON:\n%s", got)
	}
	if again := RenderSARIF(goldenFindings()); !bytes.Equal(got, again) {
		t.Fatal("RenderSARIF is not byte-stable across renders")
	}
	checkGolden(t, "findings.golden.sarif", got)

	// The document must carry one rule per distinct check, sorted, and
	// one result per finding — spot-check the structure beyond the bytes.
	var doc struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) != len(goldenFindings()) {
		t.Fatalf("want 1 run with %d results, got %+v", len(goldenFindings()), doc.Runs)
	}
	rules := doc.Runs[0].Tool.Driver.Rules
	for i := 1; i < len(rules); i++ {
		if rules[i-1].ID >= rules[i].ID {
			t.Fatalf("rules not sorted: %v", rules)
		}
	}
}

func TestRenderJSONEmpty(t *testing.T) {
	got := RenderJSON(nil)
	if !json.Valid(got) {
		t.Fatalf("invalid JSON for empty findings:\n%s", got)
	}
	var doc struct {
		Count    int             `json:"count"`
		Findings []jsonFinding   `json:"findings"`
		Extra    json.RawMessage `json:"-"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 0 || doc.Findings == nil || len(doc.Findings) != 0 {
		t.Fatalf("empty render should carry count 0 and an empty (not null) findings array: %s", got)
	}
}
