package vet

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The durability pass guards the crash-safety contract of the
// persistence packages (atomicio, seglog, record): data is durable only
// when every error on the path to the disk is observed. Three shapes are
// flagged:
//
//   - a (*os.File).Write/WriteString/Sync call whose error result is
//     discarded (a bare expression statement) — a failed fsync silently
//     downgrades "committed" to "maybe";
//   - `defer f.Close()` on an *os.File — Close carries the final flush
//     error on some filesystems, and a deferred call throws it away;
//   - a direct os.Rename or os.WriteFile outside package atomicio — the
//     tmp+rename dance without the fsync bracket tears on crash; the one
//     blessed implementation is atomicio.WriteFile.
//
// Error-path cleanup (`f.Close()` followed by returning an earlier
// error) is deliberately not flagged: only Write/Sync expression
// statements and *deferred* Closes are, which keeps the check quiet on
// legitimate "best effort on the way out of a failure" code.

func durabilityPass(pc *passCtx) []Finding {
	var out []Finding
	for _, u := range pc.units {
		if !pc.report(u) {
			continue
		}
		p := u.pkg
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, ok := s.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					name := sel.Sel.Name
					if (name == "Write" || name == "WriteString" || name == "Sync") &&
						isOSFile(p, sel.X) {
						pos := p.fset.Position(call.Pos())
						out = append(out, Finding{
							Check: CheckDurability, Severity: Error,
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("error from (*os.File).%s discarded on a durability path: a failed flush must be observed — check the error or annotate `%s durability — <reason>`",
								name, AllowDirective),
						})
					}
				case *ast.DeferStmt:
					sel, ok := s.Call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if sel.Sel.Name == "Close" && isOSFile(p, sel.X) {
						pos := p.fset.Position(s.Call.Pos())
						out = append(out, Finding{
							Check: CheckDurability, Severity: Error,
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("deferred Close on an *os.File discards the final flush error: close explicitly and check the error, or annotate `%s durability — <reason>`",
								AllowDirective),
						})
					}
				case *ast.CallExpr:
					sel, ok := s.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					if pn, ok := p.info.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "os" {
						return true
					}
					if (sel.Sel.Name == "Rename" || sel.Sel.Name == "WriteFile") &&
						p.name != "atomicio" {
						pos := p.fset.Position(s.Pos())
						out = append(out, Finding{
							Check: CheckDurability, Severity: Error,
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("direct os.%s bypasses atomicio.WriteFile (no fsync bracket — a crash can tear or lose the file): route through atomicio, or annotate `%s durability — <reason>`",
								sel.Sel.Name, AllowDirective),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// isOSFile reports whether the expression's type is os.File or *os.File.
func isOSFile(p *sourcePkg, x ast.Expr) bool {
	tv, ok := p.info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
