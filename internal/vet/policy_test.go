package vet_test

import (
	"testing"

	"flux/internal/replay"
	"flux/internal/services"
	"flux/internal/vet"
)

// shippedSpecFindings runs layer 1 over the full internal/services
// catalog exactly as cmd/fluxvet does: live proxy registry, shipped
// waiver policy.
func shippedSpecFindings() []vet.Finding {
	eng := replay.NewEngine()
	cfg := vet.SpecConfig{Proxies: func(path string) vet.ProxyInfo {
		registered, needsReply := eng.ProxyInfo(path)
		return vet.ProxyInfo{Registered: registered, NeedsReply: needsReply}
	}}
	var specs []vet.SpecSource
	for _, s := range services.AIDLSpecs() {
		specs = append(specs, vet.SpecSource{Service: s.Service, Itf: s.Itf})
	}
	return vet.Apply(vet.AnalyzeSpecs(specs, cfg), vet.DefaultSpecWaivers())
}

// TestShippedSpecsAreClean is the acceptance gate: fluxvet over the 24
// shipped service definitions reports zero findings — including zero
// stale waivers, so every entry in DefaultSpecWaivers still matches a
// real deviation.
func TestShippedSpecsAreClean(t *testing.T) {
	fs := shippedSpecFindings()
	for _, f := range fs {
		t.Errorf("shipped spec finding: %s", f.String())
	}
}

// TestShippedSpecsNeedTheWaivers guards the other direction: without the
// policy the analyzer does flag the intentional deviations (the Fig. 9
// PendingIntent guards and the device-local unrecorded methods), proving
// the zero-findings result comes from reasoned waivers rather than from
// checks that never fire on real specs.
func TestShippedSpecsNeedTheWaivers(t *testing.T) {
	eng := replay.NewEngine()
	cfg := vet.SpecConfig{Proxies: func(path string) vet.ProxyInfo {
		registered, needsReply := eng.ProxyInfo(path)
		return vet.ProxyInfo{Registered: registered, NeedsReply: needsReply}
	}}
	var specs []vet.SpecSource
	for _, s := range services.AIDLSpecs() {
		specs = append(specs, vet.SpecSource{Service: s.Service, Itf: s.Itf})
	}
	raw := vet.AnalyzeSpecs(specs, cfg)
	if len(raw) != len(vet.DefaultSpecWaivers()) {
		t.Fatalf("raw findings (%d) and waivers (%d) out of sync:\n%v",
			len(raw), len(vet.DefaultSpecWaivers()), raw)
	}
}

// TestShippedProxyPathsResolve pins the registry the @replayproxy checks
// resolve against: every shipped proxy path registers, and the sensor
// proxies are the reply-dependent ones.
func TestShippedProxyPathsResolve(t *testing.T) {
	eng := replay.NewEngine()
	paths := eng.ProxyPaths()
	if len(paths) == 0 {
		t.Fatal("no registered proxy paths")
	}
	needReply := 0
	for _, p := range paths {
		registered, needsReply := eng.ProxyInfo(p)
		if !registered {
			t.Errorf("ProxyPaths lists %s but ProxyInfo does not resolve it", p)
		}
		if needsReply {
			needReply++
		}
	}
	if needReply != 2 {
		t.Errorf("want the 2 sensor proxies reply-dependent, got %d", needReply)
	}
	if registered, _ := eng.ProxyInfo("flux.recordreplay.Proxies.ghost"); registered {
		t.Error("unknown path wrongly resolves")
	}
}
