package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureRepo lays out a miniature repo shaped like this one —
// internal/<pkg>/ dirs under a root — and returns the root.
func writeFixtureRepo(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runFixture(t *testing.T, cfg SourceConfig) []Finding {
	t.Helper()
	fs, err := RunSource(cfg)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	return fs
}

// TestSourceWallClockSeeded seeds a time.Now into a netsim-shaped package
// — the acceptance mutation — and asserts the wallclock pass pins it to
// the exact line, while kernel-clock usage stays clean.
func TestSourceWallClockSeeded(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/link.go": `package netsim

import "time"

func transferETA(bytes int64, bps int64) time.Time {
	start := time.Now() // seeded wall-clock leak
	return start.Add(time.Duration(bytes/bps) * time.Second)
}

func window() time.Duration { return 3 * time.Second } // pure constructor: fine
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}})
	got := findAll(fs, "wallclock")
	if len(got) != 1 {
		t.Fatalf("want exactly the seeded time.Now, got %v", fs)
	}
	f := got[0]
	if !strings.HasSuffix(f.File, filepath.Join("internal", "netsim", "link.go")) || f.Line != 6 {
		t.Fatalf("wallclock fired at %s:%d, want link.go:6", f.File, f.Line)
	}
}

func TestSourceWallClockDenyList(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/migration/m.go": `package migration

import "time"

func bad(ch chan int) {
	time.Sleep(time.Millisecond)
	_ = time.Since(time.Time{})
	select {
	case <-ch:
	case <-time.After(time.Second):
	}
	_ = time.NewTicker(time.Second)
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/migration"}})
	if got := findAll(fs, "wallclock"); len(got) != 4 {
		t.Fatalf("want Sleep/Since/After/NewTicker flagged, got %v", fs)
	}
}

func TestSourceWallClockAllowDirective(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/faults/f.go": `package faults

import "time"

//fluxvet:allow wallclock — telemetry measures real cost
var t0 = time.Now()

var t1 = time.Now() //fluxvet:allow wallclock — same-line form

var t2 = time.Now() // no directive: flagged
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/faults"}})
	got := findAll(fs, "wallclock")
	if len(got) != 1 || got[0].Line != 10 {
		t.Fatalf("only the undirected site should fire, got %v", fs)
	}
}

func TestSourceWallClockRenamedImportAndShadow(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/a.go": `package netsim

import wall "time"

var leak = wall.Now() // renamed import still flagged
`,
		"internal/netsim/b.go": `package netsim

type fake struct{}

func (fake) Now() int { return 0 }

func ok() int {
	var time fake // shadows the package name: not the time package
	return time.Now()
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}})
	got := findAll(fs, "wallclock")
	if len(got) != 1 || !strings.HasSuffix(got[0].File, "a.go") {
		t.Fatalf("want only the renamed-import leak, got %v", fs)
	}
}

// TestSourceMapRange covers the deterministic-path pass: a bare map range
// feeding output fires; the order-independent idioms stay clean.
func TestSourceMapRange(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/experiments/r.go": `package experiments

import "fmt"

func render(metrics map[string]float64) {
	for k, v := range metrics { // nondeterministic output order
		fmt.Println(k, v)
	}
}

func count(metrics map[string]float64) int {
	n := 0
	for range metrics { // integer accumulation: order-independent
		n++
	}
	return n
}

func keys(metrics map[string]float64) []string {
	var out []string
	for k := range metrics { // collect-then-sort idiom
		out = append(out, k)
	}
	return out
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // map-to-map transform
		out[v] = k
	}
	return out
}

func contains(m map[string]int, want int) bool {
	for _, v := range m { // constant guard-return: order-independent
		if v == want {
			return true
		}
	}
	return false
}

func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // float accumulation is NOT commutative
		total += v
	}
	return total
}
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, DeterministicDirs: []string{"internal/experiments"}})
	got := findAll(fs, "maprange")
	if len(got) != 2 {
		t.Fatalf("want the render loop and the float sum flagged, got %v", fs)
	}
	if got[0].Line != 6 || got[1].Line != 46 {
		t.Fatalf("maprange fired at lines %d,%d; want 6,46", got[0].Line, got[1].Line)
	}
}

func TestSourceSkipsTestFilesByDefault(t *testing.T) {
	root := writeFixtureRepo(t, map[string]string{
		"internal/netsim/x_test.go": `package netsim

import "time"

var deadline = time.Now()
`,
	})
	fs := runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}})
	if len(fs) != 0 {
		t.Fatalf("_test.go should be skipped by default: %v", fs)
	}
	fs = runFixture(t, SourceConfig{Root: root, VirtualClockDirs: []string{"internal/netsim"}, IncludeTests: true})
	if got := findAll(fs, "wallclock"); len(got) != 1 {
		t.Fatalf("IncludeTests should lint the test file: %v", fs)
	}
}

// TestSourceRepoInvariantHolds runs the shipped configuration over this
// repository itself: after the PR's allow-annotations, the tree is clean.
// This is the same gate `make lint` and CI enforce.
func TestSourceRepoInvariantHolds(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	fs := runFixture(t, DefaultSourceConfig(root))
	if len(fs) != 0 {
		t.Fatalf("repo violates its own source invariants:\n%v", fs)
	}
}
