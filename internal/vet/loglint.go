package vet

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/record"
	"flux/internal/seglog"
)

// Layer 2 — record-log linting.
//
// Given a persisted Selective Record log and the decorator specs, these
// checks detect logs that have drifted from the rules that supposedly
// pruned them, and logs that cannot replay against a CRIA image:
//
//	log-unknown     an entry naming an interface or method no spec
//	                declares, or whose transaction code disagrees with
//	                the spec's dispatch table.
//	unrecorded-entry  an entry for a method carrying no @record (the
//	                recorder should never have appended it). Skipped when
//	                Options.FullRecord is set (ablation logs).
//	prune-drift     an entry the specs say a later surviving entry should
//	                have pruned, or a surviving entry the rules would have
//	                suppressed outright — the persisted log and the specs
//	                disagree about drop semantics (checked against the
//	                flat-scan reference model).
//	replay-hazard   an entry issued on a Binder handle absent from the
//	                CRIA image's handle table, or whose request parcel
//	                embeds such a handle: replay would transact into a
//	                hole. Only checked when Options.Handles is provided.
//	log-order       per-app sequence numbers that are not strictly
//	                increasing; replay order would not match record order.
//	log-integrity   the on-disk file fails cryptographic verification —
//	                a CRC, hash-chain link, segment Merkle root, or
//	                anchor does not recompute — or it is a legacy v1
//	                container, which is checksummed but carries no hash
//	                chain (warning). Only LintLogFile emits this check;
//	                an integrity error refuses to lint the contents at
//	                all, since a forged log linting clean proves nothing.

// LogLintOptions parameterizes LintLog.
type LogLintOptions struct {
	// FullRecord disables the unrecorded-entry check, for logs produced
	// by the full-record ablation mode.
	FullRecord bool
	// Handles, when non-nil, is the CRIA binder table: the set of handle
	// ids the image restores. Entries transacting on other handles are
	// replay hazards.
	Handles map[binder.Handle]bool
}

// LintLogFile loads a persisted record log with full cryptographic
// verification and lints it. A v2 (seglog) file that fails verification
// yields a single log-integrity error finding and its contents are not
// linted; a legacy v1 file lints normally but earns a log-integrity
// warning, since its whole-blob CRC detects accidents, not tampering.
// The returned error is reserved for I/O problems (missing file).
func LintLogFile(path string, specs map[string]*aidl.Interface, opts LogLintOptions) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	log, err := record.LoadFile(path)
	if err != nil {
		return []Finding{{
			Check:    "log-integrity",
			Severity: Error,
			File:     path,
			Message:  fmt.Sprintf("log fails cryptographic verification: %v; refusing to lint a log that may not be what was recorded", err),
		}}, nil
	}
	out := LintLog(log, specs, opts)
	if !strings.HasPrefix(string(data), seglog.Magic) {
		out = append(out, Finding{
			Check:    "log-integrity",
			Severity: Warn,
			File:     path,
			Message:  "legacy v1 container: CRC-checked but not hash-chained; re-save to gain tamper evidence and crash recovery",
		})
		Sort(out)
	}
	return out, nil
}

// LintLog lints every app slice of a record log against the specs.
// Specs are keyed by interface descriptor.
func LintLog(log *record.Log, specs map[string]*aidl.Interface, opts LogLintOptions) []Finding {
	var out []Finding
	for _, app := range log.Apps() {
		out = append(out, LintEntries(app, log.AppEntries(app), specs, opts)...)
	}
	Sort(out)
	return out
}

// LintEntries lints one app's entry slice (already in append order).
func LintEntries(app string, entries []*record.Entry, specs map[string]*aidl.Interface, opts LogLintOptions) []Finding {
	var out []Finding
	file := "log:" + app
	add := func(check string, e *record.Entry, format string, args ...any) {
		out = append(out, Finding{
			Check:     check,
			Severity:  Error,
			File:      file,
			Line:      int(e.Seq),
			Interface: e.Interface,
			Method:    e.Method,
			Message:   fmt.Sprintf(format, args...),
		})
	}

	// Shape checks first: order, spec resolution, handle hazards.
	sorted := append([]*record.Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	var lastSeq uint64
	for i, e := range sorted {
		if i > 0 && e.Seq <= lastSeq {
			add("log-order", e, "sequence %d not strictly increasing (previous %d); replay order would not match record order", e.Seq, lastSeq)
		}
		lastSeq = e.Seq

		itf, ok := specs[e.Interface]
		if !ok {
			add("log-unknown", e, "entry names interface %s, which no spec declares", e.Interface)
			continue
		}
		m := itf.Method(e.Method)
		if m == nil {
			add("log-unknown", e, "interface %s has no method %s", e.Interface, e.Method)
			continue
		}
		if m.Code != e.Code {
			add("log-unknown", e, "entry code %d disagrees with the spec's transaction code %d for %s.%s",
				e.Code, m.Code, e.Interface, e.Method)
		}
		if !opts.FullRecord && m.Record == nil {
			add("unrecorded-entry", e, "method carries no @record; the recorder should never have appended it")
		}

		if opts.Handles != nil {
			if !opts.Handles[e.Handle] {
				add("replay-hazard", e, "entry transacts on handle %d, absent from the CRIA binder table", e.Handle)
			}
			if data, err := binder.UnmarshalParcel(e.Data); err == nil {
				for _, h := range data.Handles() {
					if !opts.Handles[h] {
						add("replay-hazard", e, "request parcel embeds handle %d, absent from the CRIA binder table", h)
					}
				}
			}
		}
	}

	// Prune/spec drift: feed the claimed survivors through the reference
	// model in sequence order. If entry E's rule would have pruned an
	// earlier survivor P (or suppressed E itself), the log and the specs
	// disagree.
	model := newRefModel(specs)
	var prior []*record.Entry
	for _, e := range sorted {
		if _, ok := specs[e.Interface]; !ok {
			continue
		}
		pruned, suppressed := model.predict(e, prior)
		for _, idx := range pruned {
			p := prior[idx]
			add("prune-drift", p,
				"entry should have been pruned by seq %d (%s.%s): the @drop/@if rules and the persisted log disagree",
				e.Seq, e.Interface, e.Method)
		}
		if suppressed {
			add("prune-drift", e,
				"entry should have been suppressed by its own @drop(this) annihilation rule yet survives in the log")
		}
		prior = append(prior, e)
	}

	Sort(out)
	return out
}
