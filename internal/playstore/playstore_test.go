package playstore

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1000)
	b := Generate(1000)
	for i := range a.Apps() {
		if a.Apps()[i] != b.Apps()[i] {
			t.Fatalf("catalogs diverge at %d", i)
		}
	}
}

func TestPaperQuantiles(t *testing.T) {
	c := Generate(100_000)
	if got := c.FractionBelow(1 << 10); got < 0.55 || got > 0.65 {
		t.Errorf("fraction under 1MB = %.3f, paper says roughly 0.60", got)
	}
	if got := c.FractionBelow(10 << 10); got < 0.85 || got > 0.95 {
		t.Errorf("fraction under 10MB = %.3f, paper says roughly 0.90", got)
	}
}

func TestPreserveEGLRateScales(t *testing.T) {
	c := Generate(PaperCatalogSize / 100) // ~4882 apps
	want := PaperPreserveEGLCount / 100   // ~33
	got := c.PreserveEGLCount()
	if got < want-3 || got > want+3 {
		t.Errorf("preserve-EGL count = %d, want ≈%d", got, want)
	}
	if frac := c.MigratableFraction(); frac < 0.99 {
		t.Errorf("migratable fraction = %.4f, want >0.99 (paper: vast majority)", frac)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	c := Generate(20_000)
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		a %= 1 << 22
		b %= 1 << 22
		if a > b {
			a, b = b, a
		}
		return c.FractionBelow(a) <= c.FractionBelow(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDFEndpoints(t *testing.T) {
	c := Generate(10_000)
	pts := c.CDF(Figure17Thresholds())
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Frac > 0.05 {
		t.Errorf("CDF(10KB) = %.3f, want near 0", pts[0].Frac)
	}
	if pts[len(pts)-1].Frac != 1.0 {
		t.Errorf("CDF(10GB) = %.3f, want 1", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac < pts[i-1].Frac {
			t.Error("CDF not monotone across thresholds")
		}
	}
}

func TestSampleSizeBounds(t *testing.T) {
	for _, u := range []float64{0, 0.1, 0.5, 0.9, 0.999, 0.99999} {
		kb := sampleSizeKB(u)
		if kb < 10 || kb > 2<<20 {
			t.Errorf("sampleSizeKB(%g) = %d out of range", u, kb)
		}
	}
}
