// Package playstore reproduces the paper's PlayDrone-based analysis of
// Google Play (§4, Figure 17): a catalog of 488,259 free apps with an
// install-size distribution matching the reported quantiles (roughly 60%
// of apps under 1 MB, 90% under 10 MB) and the measured rate of apps that
// call setPreserveEGLContextOnPause (3,300 of 488,259) — the apps Flux
// cannot migrate. The catalog is synthesized deterministically from a
// fixed seed, standing in for the crawled APKs per the substitution rule.
package playstore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PaperCatalogSize is the number of apps the paper crawled.
const PaperCatalogSize = 488259

// PaperPreserveEGLCount is the number of apps the paper found calling
// setPreserveEGLContextOnPause.
const PaperPreserveEGLCount = 3300

// AppRecord is one crawled app's metadata.
type AppRecord struct {
	Package     string
	InstallKB   int64
	PreserveEGL bool
}

// Catalog is a synthesized Play-store crawl.
type Catalog struct {
	apps []AppRecord
}

// sizeQuantiles anchors the install-size CDF (fraction → kilobytes),
// log-interpolated between anchors. Tuned to the paper's "roughly 60% of
// apps are less than 1 MB, roughly 90% less than 10 MB".
var sizeQuantiles = []struct {
	p  float64
	kb float64
}{
	{0.00, 10},
	{0.15, 80},
	{0.35, 300},
	{0.60, 1 << 10},     // 1 MB
	{0.90, 10 << 10},    // 10 MB
	{0.985, 50 << 10},   // 50 MB
	{0.9995, 500 << 10}, // 500 MB
	{1.00, 2 << 20},     // 2 GB tail
}

// sampleSizeKB inverts the anchored CDF at u ∈ [0,1).
func sampleSizeKB(u float64) int64 {
	for i := 1; i < len(sizeQuantiles); i++ {
		lo, hi := sizeQuantiles[i-1], sizeQuantiles[i]
		if u > hi.p {
			continue
		}
		frac := (u - lo.p) / (hi.p - lo.p)
		logKB := math.Log(lo.kb) + frac*(math.Log(hi.kb)-math.Log(lo.kb))
		return int64(math.Exp(logKB))
	}
	return int64(sizeQuantiles[len(sizeQuantiles)-1].kb)
}

// Generate synthesizes a catalog of n apps from a fixed seed. Use
// PaperCatalogSize for the paper's figure; smaller n for quick tests keeps
// the same distribution.
func Generate(n int) *Catalog {
	rng := rand.New(rand.NewSource(20150421)) // EuroSys'15 dates, fixed
	apps := make([]AppRecord, n)
	// Scale the preserve-EGL count with n so small catalogs keep the rate.
	preserveEvery := float64(PaperCatalogSize) / float64(PaperPreserveEGLCount)
	nextPreserve := preserveEvery
	preserved := 0
	for i := range apps {
		apps[i] = AppRecord{
			Package:   fmt.Sprintf("com.play.app%06d", i),
			InstallKB: sampleSizeKB(rng.Float64()),
		}
		if float64(i+1) >= nextPreserve {
			apps[i].PreserveEGL = true
			preserved++
			nextPreserve += preserveEvery
		}
	}
	return &Catalog{apps: apps}
}

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.apps) }

// Apps returns the records (not a copy; treat as read-only).
func (c *Catalog) Apps() []AppRecord { return c.apps }

// PreserveEGLCount counts apps Flux cannot migrate due to preserved
// contexts.
func (c *Catalog) PreserveEGLCount() int {
	n := 0
	for _, a := range c.apps {
		if a.PreserveEGL {
			n++
		}
	}
	return n
}

// MigratableFraction is the share of the catalog Flux expects to handle.
func (c *Catalog) MigratableFraction() float64 {
	if len(c.apps) == 0 {
		return 0
	}
	return 1 - float64(c.PreserveEGLCount())/float64(len(c.apps))
}

// CDFPoint is one point of Figure 17.
type CDFPoint struct {
	SizeKB int64
	Frac   float64
}

// CDF evaluates the install-size CDF at the given kilobyte thresholds.
func (c *Catalog) CDF(thresholdsKB []int64) []CDFPoint {
	sizes := make([]int64, len(c.apps))
	for i, a := range c.apps {
		sizes[i] = a.InstallKB
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	out := make([]CDFPoint, len(thresholdsKB))
	for i, th := range thresholdsKB {
		idx := sort.Search(len(sizes), func(j int) bool { return sizes[j] > th })
		out[i] = CDFPoint{SizeKB: th, Frac: float64(idx) / float64(len(sizes))}
	}
	return out
}

// FractionBelow returns the share of apps at or under kb kilobytes.
func (c *Catalog) FractionBelow(kb int64) float64 {
	n := 0
	for _, a := range c.apps {
		if a.InstallKB <= kb {
			n++
		}
	}
	return float64(n) / float64(len(c.apps))
}

// Figure17Thresholds is the paper's log-scale x axis in kilobytes.
func Figure17Thresholds() []int64 {
	return []int64{10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
}
