package gpu

import (
	"errors"
	"testing"

	"flux/internal/kernel"
)

func newLib(t *testing.T) (*Library, *kernel.PmemDriver) {
	t.Helper()
	k := kernel.New("3.4")
	return NewLibrary(Adreno320(), k.Pmem, 100), k.Pmem
}

func TestConditionalVendorLoad(t *testing.T) {
	lib, _ := newLib(t)
	if lib.VendorLoaded() {
		t.Error("vendor library loaded before first context")
	}
	c := lib.CreateContext(false)
	if !lib.VendorLoaded() {
		t.Error("vendor library not loaded by CreateContext")
	}
	if err := c.Destroy(false); err != nil {
		t.Fatal(err)
	}
	if !lib.VendorLoaded() {
		t.Error("context destruction alone must not unload the vendor library")
	}
}

func TestTexturesPinPmem(t *testing.T) {
	lib, pmem := newLib(t)
	c := lib.CreateContext(false)
	id, err := c.AllocTexture(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := pmem.UsedBy(100); got != 8<<20 {
		t.Errorf("pmem used = %d", got)
	}
	if got := c.ResidentBytes(); got != 8<<20 {
		t.Errorf("resident = %d", got)
	}
	if err := c.FreeTexture(id); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeTexture(id); err == nil {
		t.Error("double free succeeded")
	}
	if got := pmem.UsedBy(100); got != 0 {
		t.Errorf("pmem used after free = %d", got)
	}
}

func TestDestroyReleasesPmem(t *testing.T) {
	lib, pmem := newLib(t)
	c := lib.CreateContext(false)
	if _, err := c.AllocTexture(4 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocTexture(2 << 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(false); err != nil {
		t.Fatal(err)
	}
	if got := pmem.UsedBy(100); got != 0 {
		t.Errorf("pmem used after context destroy = %d", got)
	}
	if !c.Destroyed() {
		t.Error("context not marked destroyed")
	}
	if _, err := c.AllocTexture(1); err == nil {
		t.Error("texture upload on destroyed context succeeded")
	}
	if err := c.Destroy(false); err != nil {
		t.Errorf("double destroy: %v", err)
	}
}

func TestPreservedContextBlocksDestroy(t *testing.T) {
	lib, _ := newLib(t)
	c := lib.CreateContext(true) // Subway Surfers
	if err := c.Destroy(false); !errors.Is(err, ErrContextPreserved) {
		t.Errorf("Destroy = %v, want ErrContextPreserved", err)
	}
	if err := lib.TerminateAll(); !errors.Is(err, ErrContextPreserved) {
		t.Errorf("TerminateAll = %v, want ErrContextPreserved", err)
	}
	if err := c.Destroy(true); err != nil {
		t.Errorf("forced Destroy = %v", err)
	}
}

func TestEGLUnload(t *testing.T) {
	lib, _ := newLib(t)
	c := lib.CreateContext(false)
	if err := lib.EGLUnload(); err == nil {
		t.Error("eglUnload with live context succeeded")
	}
	if err := c.Destroy(false); err != nil {
		t.Fatal(err)
	}
	if err := lib.EGLUnload(); err != nil {
		t.Fatalf("eglUnload: %v", err)
	}
	if lib.VendorLoaded() {
		t.Error("vendor library survived eglUnload")
	}
}

func TestDeviceSpecificResident(t *testing.T) {
	lib, _ := newLib(t)
	if got := lib.DeviceSpecificResident(); got != "" {
		t.Errorf("fresh library resident = %q", got)
	}
	c := lib.CreateContext(false)
	if got := lib.DeviceSpecificResident(); got == "" {
		t.Error("live context not reported as device-specific state")
	}
	c.Destroy(false)
	if got := lib.DeviceSpecificResident(); got == "" {
		t.Error("loaded vendor library not reported as device-specific state")
	}
	lib.EGLUnload()
	if got := lib.DeviceSpecificResident(); got != "" {
		t.Errorf("resident after full teardown = %q", got)
	}
}

func TestTerminateAllDestroysEverything(t *testing.T) {
	lib, pmem := newLib(t)
	for i := 0; i < 3; i++ {
		c := lib.CreateContext(false)
		if _, err := c.AllocTexture(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.TerminateAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(lib.Contexts()); got != 0 {
		t.Errorf("contexts after TerminateAll = %d", got)
	}
	if got := pmem.UsedBy(100); got != 0 {
		t.Errorf("pmem after TerminateAll = %d", got)
	}
}

func TestHardwareModels(t *testing.T) {
	a, n := Adreno320(), ULPGeForce()
	if a.Model == n.Model || a.VendorBlob == n.VendorBlob {
		t.Error("GPU models are not distinguishable")
	}
	lib := NewLibrary(n, kernel.New("3.1").Pmem, 1)
	if lib.Hardware().Model != "ULP GeForce" {
		t.Errorf("Hardware = %+v", lib.Hardware())
	}
}

func TestPmemExhaustionSurfacesError(t *testing.T) {
	k := kernel.New("3.4")
	lib := NewLibrary(Adreno320(), k.Pmem, 100)
	c := lib.CreateContext(false)
	if _, err := c.AllocTexture(1 << 40); err == nil {
		t.Error("absurd texture allocation succeeded")
	}
}
