// Package gpu models the graphics stack Flux must neutralize before a
// checkpoint: the generic OpenGL ES library, the device-specific vendor
// library beneath it, EGL contexts, and the hardware resources (textures,
// shaders, command buffers) they pin in physically contiguous memory.
//
// The paper's CRIA never checkpoints GPU state. Instead it proves all of it
// can be *discarded* on the home device (background → trim-memory →
// eglUnload) and reconstructed on the guest through Android's conditional
// initialization. This package therefore tracks exactly which state is
// device-specific so tests — and the checkpointer — can verify none of it
// survives preparation. The one documented exception is also modelled:
// contexts created with setPreserveEGLContextOnPause refuse destruction,
// which is why Subway Surfers cannot migrate.
package gpu

import (
	"errors"
	"fmt"
	"sync"

	"flux/internal/kernel"
)

// Hardware describes a device's GPU, part of the device model (Adreno 320,
// ULP GeForce, ...). VendorBlob stands in for the vendor driver's opaque
// initialization state; it differs across GPUs, which is what makes raw
// GL-state migration impossible.
type Hardware struct {
	Model      string
	VendorLib  string
	VendorBlob string
}

// Adreno320 is the GPU of the Nexus 4 and Nexus 7 (2013).
func Adreno320() Hardware {
	return Hardware{Model: "Adreno 320", VendorLib: "libGLESv2_adreno.so", VendorBlob: "qcom-adreno320-fw"}
}

// ULPGeForce is the GPU of the Nexus 7 (2012) Tegra 3.
func ULPGeForce() Hardware {
	return Hardware{Model: "ULP GeForce", VendorLib: "libGLESv2_tegra.so", VendorBlob: "nvidia-tegra3-fw"}
}

// ErrContextPreserved is returned when unloading is blocked by a context
// whose owner requested EGL-context preservation on pause.
var ErrContextPreserved = errors.New("gpu: EGL context is preserved on pause")

// Library is one process's view of the OpenGL ES stack: the generic library
// (always linked) plus the lazily loaded vendor library.
type Library struct {
	hw   Hardware
	pmem *kernel.PmemDriver
	pid  int

	mu           sync.Mutex
	vendorLoaded bool
	nextCtx      int
	contexts     map[int]*Context
}

// Context is one EGL context with its hardware resources.
type Context struct {
	ID        int
	Preserved bool // setPreserveEGLContextOnPause

	mu        sync.Mutex
	destroyed bool
	textures  map[int]texture
	nextTex   int
	lib       *Library
}

type texture struct {
	size   int64
	pmemID int
}

// NewLibrary links the generic GL library into a process.
func NewLibrary(hw Hardware, pmem *kernel.PmemDriver, pid int) *Library {
	return &Library{hw: hw, pmem: pmem, pid: pid, nextCtx: 1, contexts: make(map[int]*Context)}
}

// Hardware returns the GPU this library drives.
func (l *Library) Hardware() Hardware { return l.hw }

// VendorLoaded reports whether device-specific vendor state is resident —
// the state eglUnload exists to remove.
func (l *Library) VendorLoaded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.vendorLoaded
}

// CreateContext initializes EGL (loading the vendor library on first use,
// Android's conditional initialization) and returns a fresh context.
func (l *Library) CreateContext(preserve bool) *Context {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.vendorLoaded = true
	c := &Context{ID: l.nextCtx, Preserved: preserve, textures: make(map[int]texture), nextTex: 1, lib: l}
	l.nextCtx++
	l.contexts[c.ID] = c
	return c
}

// Contexts returns the live contexts.
func (l *Library) Contexts() []*Context {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Context, 0, len(l.contexts))
	for _, c := range l.contexts {
		out = append(out, c)
	}
	return out
}

// AllocTexture uploads a texture of the given size, pinning contiguous
// memory through pmem.
func (c *Context) AllocTexture(size int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return 0, fmt.Errorf("gpu: texture upload on destroyed context %d", c.ID)
	}
	pmemID, err := c.lib.pmem.Alloc(size, c.lib.pid)
	if err != nil {
		return 0, err
	}
	id := c.nextTex
	c.nextTex++
	c.textures[id] = texture{size: size, pmemID: pmemID}
	return id, nil
}

// FreeTexture releases one texture.
func (c *Context) FreeTexture(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tex, ok := c.textures[id]
	if !ok {
		return fmt.Errorf("gpu: context %d has no texture %d", c.ID, id)
	}
	delete(c.textures, id)
	return c.lib.pmem.Free(tex.pmemID)
}

// ResidentBytes sums the context's pinned texture memory.
func (c *Context) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, t := range c.textures {
		n += t.size
	}
	return n
}

// Destroyed reports whether the context has been torn down.
func (c *Context) Destroyed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.destroyed
}

// Destroy releases the context and all its resources. Preserved contexts
// refuse unless force is set (the app itself tearing down at exit).
func (c *Context) Destroy(force bool) error {
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		return nil
	}
	if c.Preserved && !force {
		c.mu.Unlock()
		return ErrContextPreserved
	}
	c.destroyed = true
	texs := c.textures
	c.textures = map[int]texture{}
	c.mu.Unlock()

	for _, t := range texs {
		if err := c.lib.pmem.Free(t.pmemID); err != nil {
			return err
		}
	}
	l := c.lib
	l.mu.Lock()
	delete(l.contexts, c.ID)
	l.mu.Unlock()
	return nil
}

// TerminateAll destroys every non-preserved context, mirroring
// WindowManager.endTrimMemory terminating OpenGL contexts. It returns
// ErrContextPreserved if any context survives.
func (l *Library) TerminateAll() error {
	var preserved bool
	for _, c := range l.Contexts() {
		switch err := c.Destroy(false); {
		case errors.Is(err, ErrContextPreserved):
			preserved = true
		case err != nil:
			return err
		}
	}
	if preserved {
		return ErrContextPreserved
	}
	return nil
}

// EGLUnload is Flux's extension to the native OpenGL library (paper §3.3):
// after the HardwareRenderer terminates, it unloads the vendor-specific
// library entirely so no device-tied state remains in the process. It fails
// while any context is live.
func (l *Library) EGLUnload() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.contexts) > 0 {
		return fmt.Errorf("gpu: eglUnload with %d live contexts", len(l.contexts))
	}
	l.vendorLoaded = false
	return nil
}

// DeviceSpecificResident describes vendor state still resident in the
// process; a checkpoint taken while this is non-empty would not restore on
// different hardware. Empty string means clean.
func (l *Library) DeviceSpecificResident() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.contexts) > 0 {
		return fmt.Sprintf("%d EGL contexts on %s", len(l.contexts), l.hw.Model)
	}
	if l.vendorLoaded {
		return fmt.Sprintf("vendor library %s (%s)", l.hw.VendorLib, l.hw.VendorBlob)
	}
	return ""
}
