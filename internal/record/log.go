package record

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the sharded call log. The paper's prototype keeps
// the Selective Record log in SQLite; earlier revisions of this package
// used one flat []*Entry behind a single mutex, which made every Append
// contend globally and every @drop evaluation scan (and re-parse) the
// whole log. The sharded layout restores the asymptotics the paper's
// always-on interposition needs:
//
//   - one shard per app, each with its own mutex: apps never contend with
//     each other on Append, and pruning locks only the pruning app;
//   - a per-(interface, method) secondary index inside each shard, so
//     @drop evaluation visits only candidate entries of the drop-target
//     methods instead of every live entry;
//   - incremental live-byte and live-count accounting, making SizeBytes
//     and Len O(1) per shard instead of O(total entries);
//   - entries kept in append order (sequence order is guaranteed because
//     sequence numbers are assigned under the shard lock), so AppEntries
//     needs no sort.
//
// Removal marks entries dead in place and filters the index bucket; the
// backing slice is compacted amortized (whenever dead entries outnumber
// live ones), keeping prune cost proportional to the candidate set.

// methodKey identifies an index bucket: one decorated method of one
// interface.
type methodKey struct {
	itf    string
	method string
}

// appShard holds one app's slice of the call log.
type appShard struct {
	mu      sync.Mutex
	entries []*Entry               // append order; may contain tombstoned entries
	index   map[methodKey][]*Entry // live entries per (interface, method)
	dead    int                    // tombstones resident in entries
	live    int                    // live entry count
	bytes   int                    // sum of Size() over live entries
}

// Log is the persistent call log — the simulation's stand-in for the
// SQLite store the paper uses. Entries are sharded per app; pruning and
// extraction are by app so a migration ships only the migrating app's
// calls and a busy foreground app never blocks another app's recording.
//
// The shard directory is a copy-on-write map behind an atomic pointer:
// lookups (every Append) are a single atomic load with no shared-cache-line
// writes, and the rare shard creation copies the map under a mutex.
type Log struct {
	nextSeq atomic.Uint64

	shards  atomic.Pointer[map[string]*appShard]
	shardMu sync.Mutex // serializes copy-on-write shard creation

	pruneDropped   atomic.Uint64 // entries removed by @drop pruning
	cleanupDropped atomic.Uint64 // entries removed by DropApp (migration out / uninstall)
}

// NewLog returns an empty call log.
func NewLog() *Log {
	l := &Log{}
	m := make(map[string]*appShard)
	l.shards.Store(&m)
	return l
}

// shard returns app's shard, creating it on first use.
func (l *Log) shard(app string) *appShard {
	if s := (*l.shards.Load())[app]; s != nil {
		return s
	}
	l.shardMu.Lock()
	defer l.shardMu.Unlock()
	old := *l.shards.Load()
	if s := old[app]; s != nil {
		return s
	}
	s := &appShard{index: make(map[methodKey][]*Entry)}
	next := make(map[string]*appShard, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[app] = s
	l.shards.Store(&next)
	return s
}

// peek returns app's shard without creating it.
func (l *Log) peek(app string) *appShard {
	return (*l.shards.Load())[app]
}

// Append adds an entry, assigning its sequence number.
func (l *Log) Append(e *Entry) {
	s := l.shard(e.App)
	s.mu.Lock()
	// Assigning the sequence under the shard lock guarantees per-shard
	// append order equals sequence order, which AppEntries relies on.
	e.Seq = l.nextSeq.Add(1)
	e.dead = false
	s.entries = append(s.entries, e)
	k := methodKey{e.Interface, e.Method}
	s.index[k] = append(s.index[k], e)
	s.live++
	s.bytes += e.Size()
	s.mu.Unlock()
}

// removeLocked tombstones e. Caller holds s.mu and is responsible for
// filtering the index bucket e lives in.
func (s *appShard) removeLocked(e *Entry) {
	e.dead = true
	s.dead++
	s.live--
	s.bytes -= e.Size()
}

// compactLocked drops tombstones from the backing slice once they
// outnumber live entries, amortizing compaction over removals.
func (s *appShard) compactLocked() {
	if s.dead <= s.live {
		return
	}
	kept := s.entries[:0]
	for _, e := range s.entries {
		if !e.dead {
			kept = append(kept, e)
		}
	}
	// Zero the tail so tombstoned entries are collectable.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = nil
	}
	s.entries = kept
	s.dead = 0
}

// Remove deletes entries matching pred for the given app, returning how
// many were removed. It scans the whole shard; the recorder's hot path
// uses PruneMatching instead, which consults the method index.
func (l *Log) Remove(app string, pred func(*Entry) bool) int {
	s := l.peek(app)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, e := range s.entries {
		if e.dead || !pred(e) {
			continue
		}
		s.removeLocked(e)
		removed++
	}
	if removed > 0 {
		for k, bucket := range s.index {
			kept := bucket[:0]
			for _, e := range bucket {
				if !e.dead {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				delete(s.index, k)
			} else {
				s.index[k] = kept
			}
		}
		s.compactLocked()
		l.pruneDropped.Add(uint64(removed))
	}
	return removed
}

// PruneMatching deletes the app's entries of the named methods on iface
// that match pred, returning how many were removed. It visits only the
// index buckets of the candidate methods — the asymptotic win behind
// @drop evaluation on large logs. pred runs under the shard lock and is
// called in sequence order within each method bucket.
func (l *Log) PruneMatching(app, iface string, methods []string, pred func(*Entry) bool) int {
	s := l.peek(app)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, m := range methods {
		k := methodKey{iface, m}
		bucket, ok := s.index[k]
		if !ok {
			continue
		}
		kept := bucket[:0]
		for _, e := range bucket {
			if pred(e) {
				s.removeLocked(e)
				removed++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(s.index, k)
		} else {
			s.index[k] = kept
		}
	}
	if removed > 0 {
		s.compactLocked()
		l.pruneDropped.Add(uint64(removed))
	}
	return removed
}

// AppEntries returns the app's entries in sequence order.
func (l *Log) AppEntries(app string) []*Entry {
	s := l.peek(app)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Entry
	for _, e := range s.entries {
		if e.dead {
			continue
		}
		cp := *e
		out = append(out, &cp)
	}
	return out
}

// DropApp removes every entry for app (used after a successful migration
// out, and when an app is uninstalled). These removals are accounted as
// cleanup, not as pruning savings — see CleanupDropped.
func (l *Log) DropApp(app string) int {
	s := l.peek(app)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := s.live
	s.entries = nil
	s.index = make(map[methodKey][]*Entry)
	s.dead = 0
	s.live = 0
	s.bytes = 0
	l.cleanupDropped.Add(uint64(removed))
	return removed
}

// Len reports the number of live entries across all apps.
func (l *Log) Len() int {
	n := 0
	for _, s := range *l.shards.Load() {
		s.mu.Lock()
		n += s.live
		s.mu.Unlock()
	}
	return n
}

// DroppedTotal reports how many entries @drop pruning has discarded over
// the log's lifetime — the savings Selective Record buys over full
// record. Entries removed wholesale by DropApp (post-migration cleanup,
// uninstall) are deliberately excluded; see CleanupDropped.
func (l *Log) DroppedTotal() uint64 {
	return l.pruneDropped.Load()
}

// CleanupDropped reports how many entries DropApp removed over the log's
// lifetime (apps migrating out or being uninstalled). Kept separate from
// DroppedTotal so the pruning-savings statistic is not inflated by
// routine cleanup.
func (l *Log) CleanupDropped() uint64 {
	return l.cleanupDropped.Load()
}

// SizeBytes reports the serialized size of the app's log slice. The
// shard maintains the sum incrementally, so this is O(1).
func (l *Log) SizeBytes(app string) int {
	s := l.peek(app)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MarshalApp serializes the app's entries for transfer inside a
// checkpoint.
func (l *Log) MarshalApp(app string) []byte {
	entries := l.AppEntries(app)
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendEntryWire(buf, e)
	}
	return buf
}

// appendEntryWire appends one entry's wire record — the unit the
// seglog hash chain covers and decodeEntry consumes.
func appendEntryWire(buf []byte, e *Entry) []byte {
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint32(buf, e.Code)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Handle))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.At.UnixNano()))
	for _, s := range []string{e.App, e.Service, e.Interface, e.Method} {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Data)))
	buf = append(buf, e.Data...)
	if e.Reply == nil {
		buf = binary.BigEndian.AppendUint32(buf, ^uint32(0))
	} else {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Reply)))
		buf = append(buf, e.Reply...)
	}
	return buf
}

// EntryWire serializes one entry in the wire form the anchor's hash
// chain is computed over. The guest's replay engine re-serializes the
// entries it is handed and verifies them against the image's anchor —
// a defense-in-depth recomputation, so it must be byte-identical to
// what MarshalApp / SaveFile produced on the home device.
func EntryWire(e *Entry) []byte { return appendEntryWire(nil, e) }

// Snapshot returns a copy of every live entry across all apps in
// global sequence order, taken as a single point-in-time cut.
//
// Per-app extraction (AppEntries under one shard lock at a time) is
// fine for migration — only the migrating app's slice matters — but a
// whole-log save must not interleave with concurrent Appends, or the
// saved file is a state the log never occupied (fatal once the file is
// hash-chained: the anchor would commit to a torn cut). Holding
// shardMu blocks new-shard creation, then taking every shard lock in
// sorted order blocks in-flight appends; because sequence numbers are
// assigned under shard locks, the captured sequence set is a
// downward-closed prefix of the counter — a true point-in-time state.
func (l *Log) Snapshot() []*Entry {
	l.shardMu.Lock()
	defer l.shardMu.Unlock()
	shards := *l.shards.Load()
	apps := make([]string, 0, len(shards))
	for app := range shards {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		shards[app].mu.Lock()
	}
	var out []*Entry
	for _, app := range apps {
		for _, e := range shards[app].entries {
			if e.dead {
				continue
			}
			cp := *e
			out = append(out, &cp)
		}
	}
	for _, app := range apps {
		shards[app].mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Apps lists the apps with live entries in the log, sorted. fluxvet's log
// linter iterates it to lint every app slice of a persisted log.
func (l *Log) Apps() []string { return l.appsWithEntries() }

// appsWithEntries lists apps with live entries in the log, sorted.
func (l *Log) appsWithEntries() []string {
	shards := *l.shards.Load()
	out := make([]string, 0, len(shards))
	for app, s := range shards {
		s.mu.Lock()
		live := s.live
		s.mu.Unlock()
		if live > 0 {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}
