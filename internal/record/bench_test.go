package record

import (
	"fmt"
	"sync/atomic"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/kernel"
)

// Microbenchmarks for the Selective Record hot path. These are the
// quantities behind Figure 16: Append runs on every decorated Binder
// transaction an app makes, and the drop-prune path runs on every call to
// a @drop-decorated method.
//
// Baseline (flat []*Entry behind one global mutex, applyDrops re-parsing
// parcels under the lock), measured on this container before the sharded
// rewrite (linux/amd64, Intel Xeon @ 2.10GHz, single core,
// -benchtime=1s -count=3, median):
//
//	BenchmarkAppend8Apps      global-mutex log:        511 ns/op
//	BenchmarkDropPrune10k     flat-scan prune:      145820 ns/op
//	BenchmarkDropPrune10k     cost scales with total log size
//	BenchmarkAppEntries10k    copy+sort extract:    273339 ns/op
//	BenchmarkSizeBytes10k     O(total-entries) scan: 54100 ns/op
//
// After the rewrite (per-app shards + per-(interface,method) index +
// cached signature args + incremental byte accounting), same machine,
// same flags, median:
//
//	BenchmarkAppend8Apps      per-shard locks:         427 ns/op
//	BenchmarkDropPrune10k     index + cached args:    9275 ns/op  (15.7x)
//	BenchmarkAppEntries10k    append-order, no sort: 245186 ns/op
//	BenchmarkSizeBytes10k     O(1) shard counter:     22.6 ns/op  (~2400x)
//
// The acceptance target is >=5x on the 10k-entry drop-prune benchmark;
// drop-prune also becomes independent of other apps' log volume (cost is
// proportional to the candidate bucket, not the total log). The append
// benchmark serializes on this 1-core container; the sharded layout's
// contention win shows up on multi-core hosts, where the old global
// mutex made all apps convoy on a single lock.

// benchApps is the number of concurrently recording apps in the append
// benchmark — the paper's multi-app, always-on interposition scenario.
const benchApps = 8

func benchEntry(app string, i int) *Entry {
	return &Entry{
		App:       app,
		Service:   "notification",
		Interface: "INotificationManager",
		Method:    "enqueueNotification",
		Code:      1,
		Handle:    1,
		At:        kernel.Epoch,
		Data:      binder.NewParcel().Marshal(),
	}
}

// BenchmarkAppend8Apps measures raw log append throughput with eight apps
// recording concurrently — the contention profile of a busy device.
func BenchmarkAppend8Apps(b *testing.B) {
	l := NewLog()
	var next atomic.Int64
	b.SetParallelism(benchApps) // ensure benchApps goroutines even on 1-core boxes
	b.RunParallel(func(pb *testing.PB) {
		app := fmt.Sprintf("app%d", next.Add(1)%benchApps)
		i := 0
		for pb.Next() {
			l.Append(benchEntry(app, i))
			i++
		}
	})
}

// benchPruneFixture builds a recorder + driver with a 10k-entry log spread
// over 16 apps and five methods, mirroring a device where many apps have
// long-lived recorded state and one app's workload keeps triggering
// @drop pruning.
type benchPruneFixture struct {
	rec   *Recorder
	notif *aidl.Client
}

const benchPruneSrc = `
interface INotificationManager {
    @record
    void enqueueNotification(int id, in Notification notification);

    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);

    @record
    void m2(int id);
    @record
    void m3(int id);
    @record
    void m4(int id);
}
`

func newBenchPruneFixture(b *testing.B, total int) *benchPruneFixture {
	b.Helper()
	driver := binder.NewDriver()
	clock := kernel.NewClock()
	sys, err := driver.OpenProc(1, "system_server")
	if err != nil {
		b.Fatal(err)
	}
	itf := aidl.MustParse(benchPruneSrc)
	nop := func(call *binder.Call, m *aidl.Method) error { return nil }
	disp := aidl.NewDispatcher(itf).
		Handle("enqueueNotification", nop).
		Handle("cancelNotification", nop).
		Handle("m2", nop).Handle("m3", nop).Handle("m4", nop)
	if _, err := binder.AddService(sys, "notification", itf.Name, disp); err != nil {
		b.Fatal(err)
	}

	const apps = 16
	pidApp := make(map[int]string, apps)
	rec := NewRecorder(NewLog(), Config{
		Now: clock.Now,
		PackageOf: func(pid int) (string, bool) {
			app, ok := pidApp[pid]
			return app, ok
		},
	})
	rec.RegisterInterface("notification", itf)
	driver.AddInterposer(rec)

	// Populate: total entries split over 16 apps and 5 methods. Only
	// enqueueNotification entries are drop candidates for app0's cancels.
	methods := []string{"enqueueNotification", "m2", "m3", "m4"}
	var clients []*aidl.Client
	for a := 0; a < apps; a++ {
		pid := 100 + a
		name := fmt.Sprintf("bench.app%d", a)
		pidApp[pid] = name
		p, err := driver.OpenProc(pid, name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := aidl.NewClient(itf, p, "notification")
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
	}
	for i := 0; i < total; i++ {
		a := i % apps
		m := methods[(i/apps)%len(methods)]
		var err error
		if m == "enqueueNotification" {
			_, err = clients[a].Call(m, i, aidl.Object(fmt.Sprintf("n:%d", i)))
		} else {
			_, err = clients[a].Call(m, i)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return &benchPruneFixture{rec: rec, notif: clients[0]}
}

// BenchmarkDropPrune10k measures the @drop/@if evaluation cost on a
// 10 000-entry log: app0 enqueues a notification and immediately cancels
// it, annihilating the pair, with 10k other entries resident. This is the
// Selective Record hot path the acceptance criterion targets (>=5x).
func BenchmarkDropPrune10k(b *testing.B) {
	f := newBenchPruneFixture(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1_000_000 + i
		if _, err := f.notif.Call("enqueueNotification", id, aidl.Object("n:x")); err != nil {
			b.Fatal(err)
		}
		if _, err := f.notif.Call("cancelNotification", id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppEntries10k measures per-app extraction from a 10k-entry log,
// the operation that feeds checkpointing (cria) and replay.
func BenchmarkAppEntries10k(b *testing.B) {
	l := NewLog()
	for i := 0; i < 10_000; i++ {
		l.Append(benchEntry(fmt.Sprintf("app%d", i%benchApps), i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := l.AppEntries("app0"); len(got) == 0 {
			b.Fatal("no entries")
		}
	}
}

// BenchmarkSizeBytes10k measures the transfer-accounting query on a
// 10k-entry log. The sharded log answers it from an incrementally
// maintained counter.
func BenchmarkSizeBytes10k(b *testing.B) {
	l := NewLog()
	for i := 0; i < 10_000; i++ {
		l.Append(benchEntry(fmt.Sprintf("app%d", i%benchApps), i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.SizeBytes("app0") == 0 {
			b.Fatal("zero size")
		}
	}
}
