package record

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// This file gives the call log durable storage — the role SQLite plays in
// the paper's prototype. The on-disk format is a checksummed container of
// per-app slices in the MarshalApp wire format, so a device reboot (or a
// fluxtrace -o / -i round trip) does not lose recorded state.

// logFileMagic identifies a Flux record-log file.
var logFileMagic = [4]byte{'F', 'L', 'X', 'L'}

const logFileVersion = 1

// SaveFile writes the whole log (all apps) to path atomically.
func (l *Log) SaveFile(path string) error {
	apps := l.appsWithEntries()
	var buf []byte
	buf = append(buf, logFileMagic[:]...)
	buf = append(buf, logFileVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(apps)))
	for _, app := range apps {
		blob := l.MarshalApp(app)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(app)))
		buf = append(buf, app...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o600); err != nil {
		return fmt.Errorf("record: writing log file: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a log file written by SaveFile into a fresh Log.
func LoadFile(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 13 {
		return nil, fmt.Errorf("record: log file too short: %d bytes", len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("record: log file checksum mismatch")
	}
	if [4]byte(body[:4]) != logFileMagic {
		return nil, fmt.Errorf("record: not a Flux log file")
	}
	if body[4] != logFileVersion {
		return nil, fmt.Errorf("record: unsupported log file version %d", body[4])
	}
	nApps := binary.BigEndian.Uint32(body[5:])
	body = body[9:]
	l := NewLog()
	for i := uint32(0); i < nApps; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("record: truncated app name length")
		}
		nameLen := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < nameLen {
			return nil, fmt.Errorf("record: truncated app name")
		}
		body = body[nameLen:] // name is repeated inside each entry
		if len(body) < 4 {
			return nil, fmt.Errorf("record: truncated app blob length")
		}
		blobLen := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < blobLen {
			return nil, fmt.Errorf("record: truncated app blob")
		}
		entries, err := UnmarshalEntries(body[:blobLen])
		if err != nil {
			return nil, err
		}
		body = body[blobLen:]
		for _, e := range entries {
			l.Append(e)
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes in log file", len(body))
	}
	return l, nil
}
