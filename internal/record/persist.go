package record

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"flux/internal/atomicio"
	"flux/internal/seglog"
)

// This file gives the call log durable storage — the role SQLite plays in
// the paper's prototype. Format v2 persists the log as a seglog stream
// (DESIGN.md §5j): one frame per entry in global sequence order, sealed
// segments with Merkle roots, and a trailing anchor, so an on-disk log is
// crash-recoverable (RecoverFile truncates a torn tail to the last
// complete frame) and tamper-evident (LoadFile recomputes every hash).
// The v1 whole-blob container is still readable; LoadFile dispatches on
// the magic.

// AnchorWire builds a marshalled seglog anchor over a MarshalApp blob:
// the per-entry wire records become chain leaves, the tail is sealed,
// and the anchor (chain head + segment Merkle roots) covers every
// entry. The home device calls this at checkpoint time; the anchor
// rides in the CRIA image and VerifyAnchor checks the blob against it
// on the guest.
func AnchorWire(blob []byte) ([]byte, error) {
	wires, err := SplitEntries(blob)
	if err != nil {
		return nil, err
	}
	sl := seglog.New(seglog.DefaultSegmentLeaves)
	for _, w := range wires {
		sl.Append(w)
	}
	sl.SealTail()
	return sl.Anchor().Marshal(), nil
}

// VerifyAnchor checks that a MarshalApp blob is exactly the log an
// anchor commits to — same entries, same bytes, same order, nothing
// added or removed. Any single flipped bit fails.
func VerifyAnchor(blob, anchorWire []byte) error {
	wires, err := SplitEntries(blob)
	if err != nil {
		return err
	}
	return verifyWiresAnchor(wires, anchorWire)
}

// VerifyEntriesAnchor re-serializes already-decoded entries and checks
// them against an anchor. The replay engine runs this as defense in
// depth immediately before issuing transactions: whatever entries it
// was handed must still be the anchored log.
func VerifyEntriesAnchor(entries []*Entry, anchorWire []byte) error {
	wires := make([][]byte, len(entries))
	for i, e := range entries {
		wires[i] = EntryWire(e)
	}
	return verifyWiresAnchor(wires, anchorWire)
}

func verifyWiresAnchor(wires [][]byte, anchorWire []byte) error {
	a, err := seglog.ParseAnchor(anchorWire)
	if err != nil {
		return err
	}
	// Checkpoint anchors are cut over the sealed whole log, so the count
	// must match exactly: entries appended after the anchor would be
	// unverified and are refused.
	if uint64(len(wires)) != a.Leaves {
		return fmt.Errorf("%w: anchor covers %d entries, log has %d", seglog.ErrTampered, a.Leaves, len(wires))
	}
	return seglog.VerifyPayloads(wires, a)
}

// logFileMagic identifies a legacy (v1) Flux record-log file.
var logFileMagic = [4]byte{'F', 'L', 'X', 'L'}

const logFileVersion = 1

// SaveFile writes the whole log (all apps) to path atomically and
// durably, as a seglog stream over a consistent point-in-time snapshot.
func (l *Log) SaveFile(path string) error {
	sl := seglog.New(seglog.DefaultSegmentLeaves)
	for _, e := range l.Snapshot() {
		sl.Append(EntryWire(e))
	}
	sl.SealTail()
	return atomicio.WriteFile(path, sl.Marshal(), 0o600)
}

// LoadFile reads a log file written by SaveFile into a fresh Log,
// strictly: every CRC, hash-chain link, segment root, and anchor must
// verify. Both the v2 seglog format and the legacy v1 container are
// accepted.
func LoadFile(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(seglog.Magic) && string(data[:len(seglog.Magic)]) == seglog.Magic {
		sl, err := seglog.Load(data, seglog.DefaultSegmentLeaves)
		if err != nil {
			return nil, fmt.Errorf("record: %w", err)
		}
		return logFromSeglog(sl)
	}
	return loadLegacy(data)
}

// RecoverFile reads a possibly crash-torn v2 log file tolerantly: a
// torn tail is dropped and reported, semantic damage (tampering) still
// errors. Legacy v1 files have no recovery story — any damage there is
// a hard error, exactly the gap v2 closes.
func RecoverFile(path string) (*Log, seglog.Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, seglog.Recovery{}, err
	}
	if len(data) >= len(seglog.Magic) && string(data[:len(seglog.Magic)]) == seglog.Magic {
		sl, rec, err := seglog.Recover(data, seglog.DefaultSegmentLeaves)
		if err != nil {
			return nil, rec, fmt.Errorf("record: %w", err)
		}
		l, err := logFromSeglog(sl)
		return l, rec, err
	}
	l, err := loadLegacy(data)
	return l, seglog.Recovery{RetainedBytes: len(data), Leaves: l.lenOrZero()}, err
}

func (l *Log) lenOrZero() int {
	if l == nil {
		return 0
	}
	return l.Len()
}

// logFromSeglog rebuilds a Log from a decoded stream. Pruned leaves
// (payload gone, hash retained) are skipped — their content was
// @drop-compacted away while their place in the chain survives.
func logFromSeglog(sl *seglog.Log) (*Log, error) {
	l := NewLog()
	for i, payload := range sl.Payloads() {
		if payload == nil {
			continue
		}
		e, consumed, err := decodeEntry(payload)
		if err != nil {
			return nil, fmt.Errorf("record: log entry %d: %w", i, err)
		}
		if consumed != len(payload) {
			return nil, fmt.Errorf("record: log entry %d: %d trailing bytes", i, len(payload)-consumed)
		}
		l.Append(e)
	}
	return l, nil
}

// loadLegacy reads the v1 whole-blob container.
func loadLegacy(data []byte) (*Log, error) {
	if len(data) < 13 {
		return nil, fmt.Errorf("record: log file too short: %d bytes", len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("record: log file checksum mismatch")
	}
	if !bytes.Equal(body[:4], logFileMagic[:]) {
		return nil, fmt.Errorf("record: not a Flux log file")
	}
	if body[4] != logFileVersion {
		return nil, fmt.Errorf("record: unsupported log file version %d", body[4])
	}
	nApps := binary.BigEndian.Uint32(body[5:])
	body = body[9:]
	l := NewLog()
	for i := uint32(0); i < nApps; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("record: truncated app name length")
		}
		nameLen := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint64(nameLen) > uint64(len(body)) {
			return nil, fmt.Errorf("record: truncated app name")
		}
		body = body[nameLen:] // name is repeated inside each entry
		if len(body) < 4 {
			return nil, fmt.Errorf("record: truncated app blob length")
		}
		blobLen := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint64(blobLen) > uint64(len(body)) {
			return nil, fmt.Errorf("record: truncated app blob")
		}
		entries, err := UnmarshalEntries(body[:blobLen])
		if err != nil {
			return nil, err
		}
		body = body[blobLen:]
		for _, e := range entries {
			l.Append(e)
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes in log file", len(body))
	}
	return l, nil
}
