package record

import (
	"testing"
	"time"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/kernel"
)

const notifSrc = `
interface INotificationManager {
    @record
    void enqueueNotification(int id, in Notification notification);

    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);

    void getActiveCount();
}
`

const alarmSrc = `
interface IAlarmManager {
    @record {
        @drop this;
        @if operation;
        @replayproxy flux.recordreplay.Proxies.alarmMgrSet;
    }
    void set(int type, long triggerAtTime, in PendingIntent operation);

    @record {
        @drop this, set;
        @if operation;
    }
    void remove(in PendingIntent operation);
}
`

type fixture struct {
	driver   *binder.Driver
	clock    *kernel.Clock
	rec      *Recorder
	app      *binder.Proc
	notif    *aidl.Client
	alarm    *aidl.Client
	notifItf *aidl.Interface
	alarmItf *aidl.Interface
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{driver: binder.NewDriver(), clock: kernel.NewClock()}
	sys, err := f.driver.OpenProc(1, "system_server")
	if err != nil {
		t.Fatal(err)
	}
	f.app, err = f.driver.OpenProc(100, "com.example.app")
	if err != nil {
		t.Fatal(err)
	}

	f.notifItf = aidl.MustParse(notifSrc)
	f.alarmItf = aidl.MustParse(alarmSrc)
	nop := func(call *binder.Call, m *aidl.Method) error { return nil }
	notifDisp := aidl.NewDispatcher(f.notifItf).
		Handle("enqueueNotification", nop).
		Handle("cancelNotification", nop).
		Handle("getActiveCount", nop)
	alarmDisp := aidl.NewDispatcher(f.alarmItf).
		Handle("set", nop).
		Handle("remove", nop)
	if _, err := binder.AddService(sys, "notification", f.notifItf.Name, notifDisp); err != nil {
		t.Fatal(err)
	}
	if _, err := binder.AddService(sys, "alarm", f.alarmItf.Name, alarmDisp); err != nil {
		t.Fatal(err)
	}

	f.rec = NewRecorder(NewLog(), Config{
		Now: f.clock.Now,
		PackageOf: func(pid int) (string, bool) {
			if pid == 100 {
				return "com.example.app", true
			}
			return "", false
		},
	})
	f.rec.RegisterInterface("notification", f.notifItf)
	f.rec.RegisterInterface("alarm", f.alarmItf)
	f.driver.AddInterposer(f.rec)

	if f.notif, err = aidl.NewClient(f.notifItf, f.app, "notification"); err != nil {
		t.Fatal(err)
	}
	if f.alarm, err = aidl.NewClient(f.alarmItf, f.app, "alarm"); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) call(t *testing.T, c *aidl.Client, method string, args ...any) {
	t.Helper()
	if _, err := c.Call(method, args...); err != nil {
		t.Fatalf("%s: %v", method, err)
	}
}

func (f *fixture) methods(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, e := range f.rec.Log().AppEntries("com.example.app") {
		out = append(out, e.Method)
	}
	return out
}

func TestRecordDecoratedCall(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("n:hello"))
	got := f.methods(t)
	if len(got) != 1 || got[0] != "enqueueNotification" {
		t.Errorf("log = %v", got)
	}
	e := f.rec.Log().AppEntries("com.example.app")[0]
	if e.Service != "notification" || e.Interface != "INotificationManager" {
		t.Errorf("entry = %+v", e)
	}
	if e.At != kernel.Epoch {
		t.Errorf("timestamp = %v", e.At)
	}
}

func TestUndecoratedMethodNotRecorded(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "getActiveCount")
	if got := f.methods(t); len(got) != 0 {
		t.Errorf("log = %v, want empty", got)
	}
}

func TestCancelAnnihilatesEnqueue(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("n:a"))
	f.call(t, f.notif, "enqueueNotification", 2, aidl.Object("n:b"))
	f.call(t, f.notif, "cancelNotification", 1)
	got := f.methods(t)
	if len(got) != 1 || got[0] != "enqueueNotification" {
		t.Fatalf("log = %v, want only notification 2's enqueue", got)
	}
	p, err := f.rec.Log().AppEntries("com.example.app")[0].Parcel()
	if err != nil {
		t.Fatal(err)
	}
	if id := p.MustInt32(); id != 2 {
		t.Errorf("surviving enqueue id = %d, want 2", id)
	}
}

func TestCancelWithoutMatchIsRecorded(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "cancelNotification", 9)
	got := f.methods(t)
	if len(got) != 1 || got[0] != "cancelNotification" {
		t.Errorf("log = %v, want lone cancel recorded", got)
	}
}

func TestRepeatedCancelDropsPreviousCancel(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "cancelNotification", 9)
	f.call(t, f.notif, "cancelNotification", 9)
	if got := f.methods(t); len(got) != 1 {
		t.Errorf("log = %v, want single cancel", got)
	}
}

func TestAlarmSetReplacementKeepsNewest(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.alarm, "set", 0, int64(1000), aidl.Object("pi:sync"))
	f.call(t, f.alarm, "set", 0, int64(2000), aidl.Object("pi:sync"))
	got := f.methods(t)
	if len(got) != 1 || got[0] != "set" {
		t.Fatalf("log = %v, want single set", got)
	}
	p, _ := f.rec.Log().AppEntries("com.example.app")[0].Parcel()
	p.MustInt32()
	if at := p.MustInt64(); at != 2000 {
		t.Errorf("surviving alarm time = %d, want 2000 (replacement)", at)
	}
}

func TestAlarmRemoveAnnihilatesSet(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.alarm, "set", 0, int64(1000), aidl.Object("pi:sync"))
	f.call(t, f.alarm, "set", 0, int64(1500), aidl.Object("pi:other"))
	f.call(t, f.alarm, "remove", aidl.Object("pi:sync"))
	got := f.methods(t)
	if len(got) != 1 || got[0] != "set" {
		t.Fatalf("log = %v, want only pi:other's set", got)
	}
}

func TestDifferentSignaturesDoNotCollide(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.alarm, "set", 0, int64(1000), aidl.Object("pi:a"))
	f.call(t, f.alarm, "set", 0, int64(2000), aidl.Object("pi:b"))
	if got := f.methods(t); len(got) != 2 {
		t.Errorf("log = %v, want both alarms", got)
	}
}

func TestUnresolvablePIDNotRecorded(t *testing.T) {
	f := newFixture(t)
	other, err := f.driver.OpenProc(200, "daemon")
	if err != nil {
		t.Fatal(err)
	}
	c, err := aidl.NewClient(f.notifItf, other, "notification")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("enqueueNotification", 1, aidl.Object("x")); err != nil {
		t.Fatal(err)
	}
	if got := f.rec.Log().Len(); got != 0 {
		t.Errorf("log len = %d, want 0", got)
	}
}

func TestPauseResume(t *testing.T) {
	f := newFixture(t)
	f.rec.Pause("com.example.app")
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("x"))
	if got := f.rec.Log().Len(); got != 0 {
		t.Errorf("paused recording still logged %d entries", got)
	}
	f.rec.Resume("com.example.app")
	f.call(t, f.notif, "enqueueNotification", 2, aidl.Object("y"))
	if got := f.rec.Log().Len(); got != 1 {
		t.Errorf("log len after resume = %d, want 1", got)
	}
}

func TestFullRecordAblation(t *testing.T) {
	f := newFixture(t)
	f.rec.SetFullRecord("INotificationManager", true)
	f.call(t, f.notif, "getActiveCount") // undecorated, recorded in full mode
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("x"))
	f.call(t, f.notif, "cancelNotification", 1) // no pruning in full mode
	if got := f.methods(t); len(got) != 3 {
		t.Errorf("full-record log = %v, want 3 entries", got)
	}
}

func TestStatsCountObservedAndRecorded(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("x"))
	f.call(t, f.notif, "cancelNotification", 1)
	st := f.rec.Stats()
	if st.Observed != 2 {
		t.Errorf("observed = %d, want 2", st.Observed)
	}
	if st.Recorded != 1 {
		// the enqueue was appended; the cancel annihilated it and was
		// suppressed before ever reaching the log
		t.Errorf("recorded = %d, want 1", st.Recorded)
	}
	if st.DroppedByRule != 1 {
		// the cancel itself never reached the log
		t.Errorf("dropped-by-rule = %d, want 1 (the suppressed cancel)", st.DroppedByRule)
	}
	if st.Pruned != 1 {
		t.Errorf("pruned = %d, want 1 (the annihilated enqueue)", st.Pruned)
	}
	if got := f.rec.Log().DroppedTotal(); got != 1 {
		t.Errorf("dropped = %d, want 1 (the annihilated enqueue)", got)
	}
}

func TestLogMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	f.clock.Advance(90 * time.Second)
	f.call(t, f.notif, "enqueueNotification", 7, aidl.Object("n:persist"))
	f.call(t, f.alarm, "set", 1, int64(555), aidl.Object("pi:x"))

	blob := f.rec.Log().MarshalApp("com.example.app")
	entries, err := UnmarshalEntries(blob)
	if err != nil {
		t.Fatalf("UnmarshalEntries: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("round-tripped %d entries", len(entries))
	}
	e := entries[0]
	if e.Method != "enqueueNotification" || e.Service != "notification" {
		t.Errorf("entry 0 = %+v", e)
	}
	if !e.At.Equal(kernel.Epoch.Add(90 * time.Second)) {
		t.Errorf("entry 0 time = %v", e.At)
	}
	p, err := e.Parcel()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustInt32(); got != 7 {
		t.Errorf("entry 0 id = %d", got)
	}
	if e.Reply == nil {
		t.Error("entry 0 lost reply parcel")
	}
}

func TestLogUnmarshalTruncated(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 7, aidl.Object("x"))
	blob := f.rec.Log().MarshalApp("com.example.app")
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := UnmarshalEntries(blob[:cut]); err == nil {
			t.Errorf("UnmarshalEntries accepted truncation at %d", cut)
		}
	}
}

func TestDropAppClearsOnlyThatApp(t *testing.T) {
	l := NewLog()
	l.Append(&Entry{App: "a", Method: "m"})
	l.Append(&Entry{App: "b", Method: "m"})
	if got := l.DropApp("a"); got != 1 {
		t.Errorf("DropApp removed %d", got)
	}
	if l.Len() != 1 {
		t.Errorf("log len = %d", l.Len())
	}
	if got := l.AppEntries("b"); len(got) != 1 {
		t.Errorf("b entries = %v", got)
	}
}

func TestDropAppDoesNotInflateDroppedTotal(t *testing.T) {
	// DroppedTotal is documented as the savings Selective Record's pruning
	// buys; post-migration cleanup (DropApp) must not count toward it.
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 1, aidl.Object("n:a"))
	f.call(t, f.notif, "cancelNotification", 1) // prune: annihilates the enqueue
	f.call(t, f.notif, "enqueueNotification", 2, aidl.Object("n:b"))
	f.call(t, f.alarm, "set", 0, int64(1000), aidl.Object("pi:x"))
	if got := f.rec.Log().DroppedTotal(); got != 1 {
		t.Fatalf("DroppedTotal before cleanup = %d, want 1", got)
	}
	if got := f.rec.Log().DropApp("com.example.app"); got != 2 {
		t.Fatalf("DropApp removed %d, want 2", got)
	}
	if got := f.rec.Log().DroppedTotal(); got != 1 {
		t.Errorf("DroppedTotal after DropApp = %d, want 1 (cleanup must not inflate pruning savings)", got)
	}
	if got := f.rec.Log().CleanupDropped(); got != 2 {
		t.Errorf("CleanupDropped = %d, want 2", got)
	}
}

func TestAppEntriesSequenceOrderInterleaved(t *testing.T) {
	// Entries of one app must come back in sequence order even when other
	// apps' appends interleave with them across shards.
	l := NewLog()
	for i := 0; i < 50; i++ {
		l.Append(&Entry{App: "a", Method: "m"})
		l.Append(&Entry{App: "b", Method: "m"})
	}
	for _, app := range []string{"a", "b"} {
		got := l.AppEntries(app)
		if len(got) != 50 {
			t.Fatalf("%s: %d entries, want 50", app, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				t.Fatalf("%s: out-of-order seqs %d then %d", app, got[i-1].Seq, got[i].Seq)
			}
		}
	}
}

func TestSizeBytesMatchesEntrySizes(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.notif, "enqueueNotification", 7, aidl.Object("payload"))
	want := 0
	for _, e := range f.rec.Log().AppEntries("com.example.app") {
		want += e.Size()
	}
	if got := f.rec.Log().SizeBytes("com.example.app"); got != want || got == 0 {
		t.Errorf("SizeBytes = %d, want %d (nonzero)", got, want)
	}
}
