package record

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
)

// Regression harness for the indexed, cached-signature prune path. A
// reference model re-implements the pre-sharding algorithm — flat scan
// over the app's entries, re-parsing each candidate parcel with
// aidl.ArgString — and a fixed-seed randomized workload is driven through
// both the real recorder and the model. The surviving logs must agree
// byte-for-byte (method sequence and marshalled request parcels, in
// order), proving the per-(interface, method) index and the append-time
// argument cache changed the cost of pruning, not its outcome.

// refEntry is a surviving call in the reference model.
type refEntry struct {
	method string
	data   []byte
}

// refModel replays the drop semantics the old implementation had.
type refModel struct {
	itf     *aidl.Interface
	rules   map[string]aidl.Rule
	entries []refEntry
}

func newRefModel(itf *aidl.Interface) *refModel {
	m := &refModel{itf: itf, rules: make(map[string]aidl.Rule)}
	for _, r := range aidl.Rules(itf) {
		m.rules[r.Method] = r
	}
	return m
}

// observe applies one decorated call to the model, mirroring the old
// Recorder.applyDrops + append flow exactly: flat scan, parcel re-parse,
// drop-self suppression.
func (r *refModel) observe(t *testing.T, method string, data *binder.Parcel) {
	t.Helper()
	m := r.itf.Method(method)
	if m == nil {
		t.Fatalf("no method %s", method)
	}
	rule, decorated := r.rules[method]
	if !decorated {
		return
	}
	suppress := false
	if len(rule.DropMethods) > 0 {
		targets := make(map[string]bool, len(rule.DropMethods))
		for _, name := range rule.DropMethods {
			if name == "this" {
				targets[m.Name] = true
			} else {
				targets[name] = true
			}
		}
		sigVals := make([]map[string]string, len(rule.Signatures))
		bad := false
		for i, sig := range rule.Signatures {
			vals := make(map[string]string, len(sig))
			for _, arg := range sig {
				v, err := aidl.ArgString(m, data, arg)
				if err != nil {
					bad = true
					break
				}
				vals[arg] = v
			}
			if bad {
				break
			}
			sigVals[i] = vals
		}
		if !bad {
			droppedOther := false
			kept := r.entries[:0]
			for _, e := range r.entries {
				if !targets[e.method] {
					kept = append(kept, e)
					continue
				}
				em := r.itf.Method(e.method)
				ep, err := binder.UnmarshalParcel(e.data)
				if err != nil {
					kept = append(kept, e)
					continue
				}
				drop := false
				if len(rule.Signatures) == 0 {
					drop = true
				} else {
					for i, sig := range rule.Signatures {
						match := true
						for _, arg := range sig {
							ev, err := aidl.ArgString(em, ep, arg)
							if err != nil || ev != sigVals[i][arg] {
								match = false
								break
							}
						}
						if match {
							drop = true
							break
						}
					}
				}
				if drop {
					if e.method != m.Name {
						droppedOther = true
					}
					continue
				}
				kept = append(kept, e)
			}
			r.entries = kept
			suppress = rule.DropsSelf() && droppedOther
		}
	}
	if !suppress {
		r.entries = append(r.entries, refEntry{method: method, data: data.Marshal()})
	}
}

// TestPruneMatchesReferenceModel drives a fixed-seed randomized workload
// of notification and alarm traffic through the real recorder and the
// reference model, comparing the surviving log byte-for-byte after every
// call.
func TestPruneMatchesReferenceModel(t *testing.T) {
	f := newFixture(t)
	refNotif := newRefModel(f.notifItf)
	refAlarm := newRefModel(f.alarmItf)

	rng := rand.New(rand.NewSource(1504))
	const calls = 600
	for i := 0; i < calls; i++ {
		// Small value spaces force frequent @if matches.
		id := rng.Intn(6)
		op := aidl.Object(fmt.Sprintf("pi:%d", rng.Intn(4)))
		switch rng.Intn(5) {
		case 0:
			payload := aidl.Object(fmt.Sprintf("n:%d", i))
			f.call(t, f.notif, "enqueueNotification", id, payload)
			m := f.notifItf.Method("enqueueNotification")
			p, err := aidl.MarshalCallArgs(m, id, payload)
			if err != nil {
				t.Fatal(err)
			}
			refNotif.observe(t, "enqueueNotification", p)
		case 1:
			f.call(t, f.notif, "cancelNotification", id)
			m := f.notifItf.Method("cancelNotification")
			p, err := aidl.MarshalCallArgs(m, id)
			if err != nil {
				t.Fatal(err)
			}
			refNotif.observe(t, "cancelNotification", p)
		case 2:
			at := int64(1000 + i)
			f.call(t, f.alarm, "set", 0, at, op)
			m := f.alarmItf.Method("set")
			p, err := aidl.MarshalCallArgs(m, 0, at, op)
			if err != nil {
				t.Fatal(err)
			}
			refAlarm.observe(t, "set", p)
		case 3:
			f.call(t, f.alarm, "remove", op)
			m := f.alarmItf.Method("remove")
			p, err := aidl.MarshalCallArgs(m, op)
			if err != nil {
				t.Fatal(err)
			}
			refAlarm.observe(t, "remove", p)
		case 4:
			// Undecorated traffic must never perturb the log.
			f.call(t, f.notif, "getActiveCount")
		}

		if i%37 == 0 || i == calls-1 {
			compareToReference(t, f, refNotif, refAlarm, i)
		}
	}
}

// compareToReference asserts the recorder's surviving log equals the two
// reference models' combined state: same methods, same request parcel
// bytes, same order.
func compareToReference(t *testing.T, f *fixture, refNotif, refAlarm *refModel, step int) {
	t.Helper()
	got := f.rec.Log().AppEntries("com.example.app")
	var gotNotif, gotAlarm []refEntry
	for _, e := range got {
		re := refEntry{method: e.Method, data: e.Data}
		switch e.Interface {
		case "INotificationManager":
			gotNotif = append(gotNotif, re)
		case "IAlarmManager":
			gotAlarm = append(gotAlarm, re)
		default:
			t.Fatalf("step %d: unexpected interface %s", step, e.Interface)
		}
	}
	for _, cmp := range []struct {
		name string
		got  []refEntry
		want []refEntry
	}{
		{"notification", gotNotif, refNotif.entries},
		{"alarm", gotAlarm, refAlarm.entries},
	} {
		if len(cmp.got) != len(cmp.want) {
			t.Fatalf("step %d: %s log has %d entries, reference %d", step, cmp.name, len(cmp.got), len(cmp.want))
		}
		for i := range cmp.got {
			if cmp.got[i].method != cmp.want[i].method {
				t.Fatalf("step %d: %s entry %d method %s, reference %s",
					step, cmp.name, i, cmp.got[i].method, cmp.want[i].method)
			}
			if !bytes.Equal(cmp.got[i].data, cmp.want[i].data) {
				t.Fatalf("step %d: %s entry %d (%s) parcel bytes diverge from reference",
					step, cmp.name, i, cmp.got[i].method)
			}
		}
	}
}

// TestLazyArgCacheMatchesAppendTimeCache proves entries loaded without a
// cache (wire round trip, as after persistence) prune identically to
// entries cached at append time.
func TestLazyArgCacheMatchesAppendTimeCache(t *testing.T) {
	f := newFixture(t)
	f.call(t, f.alarm, "set", 0, int64(1000), aidl.Object("pi:sync"))
	f.call(t, f.alarm, "set", 0, int64(1500), aidl.Object("pi:other"))

	// Round trip through the wire format, dropping append-time caches.
	blob := f.rec.Log().MarshalApp("com.example.app")
	entries, err := UnmarshalEntries(blob)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewLog()
	for _, e := range entries {
		fresh.Append(e)
	}
	rec2 := NewRecorder(fresh, Config{
		Now:       f.clock.Now,
		PackageOf: func(pid int) (string, bool) { return "com.example.app", pid == 100 },
	})
	rec2.RegisterInterface("alarm", f.alarmItf)

	// Re-issue the remove through a second driver wired to rec2.
	// Simpler: prune directly through the recorder API surface by
	// simulating the same call the fixture would make.
	removed := fresh.PruneMatching("com.example.app", "IAlarmManager", []string{"set"}, func(e *Entry) bool {
		m := f.alarmItf.Method(e.Method)
		vals := e.argValues(m)
		return vals["operation"] == "s:pi:sync" // canonical EntryString form
	})
	if removed != 1 {
		t.Fatalf("lazy-cache prune removed %d entries, want 1", removed)
	}
	left := fresh.AppEntries("com.example.app")
	if len(left) != 1 {
		t.Fatalf("%d entries left, want 1", len(left))
	}
	p, err := left[0].Parcel()
	if err != nil {
		t.Fatal(err)
	}
	p.MustInt32()
	p.MustInt64()
	if op := p.MustString(); op != "pi:other" {
		t.Errorf("survivor operation = %q, want pi:other", op)
	}
}
