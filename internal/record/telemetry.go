package record

import "flux/internal/obs"

// Per-service Selective Record metrics. The recorder sits on every
// decorated Binder transaction, so all metric bumps are gated on
// obs.Enabled() — the disabled path adds one atomic bool load to the
// hot path (the <5% budget is verified in bench_test.go).
const (
	// MetricObserved counts decorated-interface calls seen, by service.
	MetricObserved = "flux_record_observed_total"
	// MetricRecorded counts calls appended to the log, by service.
	MetricRecorded = "flux_record_recorded_total"
	// MetricSuppressed counts triggering calls annihilated by a
	// @drop("this") match before reaching the log, by service.
	MetricSuppressed = "flux_record_suppressed_total"
	// MetricPruned counts previously recorded entries removed by @drop
	// evaluation, by the service whose rule triggered the prune.
	MetricPruned = "flux_record_pruned_total"
)

func init() {
	m := obs.M()
	m.Describe(MetricObserved, "Selective Record: decorated-interface calls observed, by service.")
	m.Describe(MetricRecorded, "Selective Record: calls appended to the record log, by service.")
	m.Describe(MetricSuppressed, "Selective Record: triggering calls suppressed by @drop(this) annihilation, by service.")
	m.Describe(MetricPruned, "Selective Record: recorded entries pruned by @drop evaluation, by service.")
}
