package record

import (
	"fmt"
	"sync"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/kernel"
)

// Concurrency tests for the sharded log, in the pattern of
// internal/binder/concurrency_test.go: hammer the hot paths from many
// goroutines and assert only deterministic aggregates. Run with -race.

// TestConcurrentAppendAcrossApps drives eight apps through the full
// recorder pipeline (Binder transaction → interposer → applyDrops →
// append) in parallel. Each app's workload is sequential within itself,
// so its final log content is deterministic even though apps interleave
// freely across shards.
func TestConcurrentAppendAcrossApps(t *testing.T) {
	driver := binder.NewDriver()
	clock := kernel.NewClock()
	sys, err := driver.OpenProc(1, "system_server")
	if err != nil {
		t.Fatal(err)
	}
	itf := aidl.MustParse(notifSrc)
	nop := func(call *binder.Call, m *aidl.Method) error { return nil }
	disp := aidl.NewDispatcher(itf).
		Handle("enqueueNotification", nop).
		Handle("cancelNotification", nop).
		Handle("getActiveCount", nop)
	if _, err := binder.AddService(sys, "notification", itf.Name, disp); err != nil {
		t.Fatal(err)
	}

	const apps, perApp = 8, 40
	pidApp := make(map[int]string, apps)
	for i := 0; i < apps; i++ {
		pidApp[100+i] = fmt.Sprintf("conc.app%d", i)
	}
	rec := NewRecorder(NewLog(), Config{
		Now: clock.Now,
		PackageOf: func(pid int) (string, bool) {
			app, ok := pidApp[pid]
			return app, ok
		},
	})
	rec.RegisterInterface("notification", itf)
	driver.AddInterposer(rec)

	var wg sync.WaitGroup
	errs := make(chan error, apps)
	for i := 0; i < apps; i++ {
		p, err := driver.OpenProc(100+i, pidApp[100+i])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p *binder.Proc, i int) {
			defer wg.Done()
			c, err := aidl.NewClient(itf, p, "notification")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < perApp; j++ {
				if _, err := c.Call("enqueueNotification", j, aidl.Object(fmt.Sprintf("n:%d/%d", i, j))); err != nil {
					errs <- err
					return
				}
				if j%2 == 1 {
					// Annihilate the pair: cancel drops the enqueue and
					// suppresses itself.
					if _, err := c.Call("cancelNotification", j); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(p, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Each app enqueued perApp notifications and cancelled the odd half.
	wantPerApp := perApp / 2
	for i := 0; i < apps; i++ {
		app := pidApp[100+i]
		got := rec.Log().AppEntries(app)
		if len(got) != wantPerApp {
			t.Errorf("%s: %d surviving entries, want %d", app, len(got), wantPerApp)
		}
		want := 0
		for _, e := range got {
			if e.Method != "enqueueNotification" {
				t.Errorf("%s: unexpected surviving method %s", app, e.Method)
			}
			want += e.Size()
		}
		if sz := rec.Log().SizeBytes(app); sz != want {
			t.Errorf("%s: SizeBytes = %d, want %d", app, sz, want)
		}
	}
	if got, want := rec.Log().Len(), apps*wantPerApp; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	if got := rec.Log().DroppedTotal(); got != uint64(apps*(perApp/2)) {
		t.Errorf("DroppedTotal = %d, want %d", got, apps*(perApp/2))
	}
}

// TestConcurrentAppendPruneExtract races raw log operations — Append,
// PruneMatching, AppEntries, MarshalApp, SizeBytes, Len, DropApp — across
// apps with no coordination beyond the log itself. Assertions are
// per-app invariants that hold under any interleaving.
func TestConcurrentAppendPruneExtract(t *testing.T) {
	l := NewLog()
	const apps, writers, ops = 4, 2, 200
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		app := fmt.Sprintf("raw.app%d", a)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(app string, w int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					l.Append(&Entry{
						App:       app,
						Interface: "I",
						Method:    fmt.Sprintf("m%d", i%3),
						Data:      []byte{byte(i)},
					})
					if i%10 == 9 {
						l.PruneMatching(app, "I", []string{"m0"}, func(e *Entry) bool { return true })
					}
				}
			}(app, w)
		}
		// One reader per app exercising extraction while writers run.
		wg.Add(1)
		go func(app string) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				entries := l.AppEntries(app)
				for j := 1; j < len(entries); j++ {
					if entries[j].Seq <= entries[j-1].Seq {
						t.Errorf("%s: AppEntries out of seq order", app)
						return
					}
				}
				_ = l.MarshalApp(app)
				_ = l.SizeBytes(app)
				_ = l.Len()
			}
		}(app)
	}
	wg.Wait()

	total := 0
	for a := 0; a < apps; a++ {
		app := fmt.Sprintf("raw.app%d", a)
		entries := l.AppEntries(app)
		want := 0
		for _, e := range entries {
			if e.Method == "m0" {
				// A final sweep proves the index still finds leftovers.
				continue
			}
			want += e.Size()
		}
		removed := l.PruneMatching(app, "I", []string{"m0"}, func(e *Entry) bool { return true })
		if sz := l.SizeBytes(app); sz != want {
			t.Errorf("%s: SizeBytes = %d, want %d after pruning %d leftovers", app, sz, want, removed)
		}
		// Round-trip the survivors through the wire format.
		back, err := UnmarshalEntries(l.MarshalApp(app))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(back) != len(l.AppEntries(app)) {
			t.Errorf("%s: wire round trip %d != %d live", app, len(back), len(l.AppEntries(app)))
		}
		total += len(back)
	}
	if got := l.Len(); got != total {
		t.Errorf("Len = %d, want %d", got, total)
	}
	// Cleanup accounting: DropApp removes the rest without touching the
	// pruning statistic.
	pruned := l.DroppedTotal()
	for a := 0; a < apps; a++ {
		l.DropApp(fmt.Sprintf("raw.app%d", a))
	}
	if got := l.Len(); got != 0 {
		t.Errorf("Len after DropApp sweep = %d, want 0", got)
	}
	if got := l.DroppedTotal(); got != pruned {
		t.Errorf("DroppedTotal changed from %d to %d during cleanup", pruned, got)
	}
	if got := l.CleanupDropped(); got != uint64(total) {
		t.Errorf("CleanupDropped = %d, want %d", got, total)
	}
}

// TestConcurrentPauseResumeAndRegister races recorder control-plane
// operations (Pause/Resume/SetFullRecord/Stats) against recording
// traffic, guarding the RWMutex conversion.
func TestConcurrentPauseResumeAndRegister(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			f.rec.Pause("other.app")
			f.rec.Resume("other.app")
			f.rec.SetFullRecord("INotificationManager", i%2 == 0)
			f.rec.Stats()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := f.notif.Call("enqueueNotification", i, aidl.Object("n:x")); err != nil {
				t.Errorf("call: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	f.rec.SetFullRecord("INotificationManager", false)
	if got := len(f.rec.Log().AppEntries("com.example.app")); got != 100 {
		t.Errorf("recorded %d entries, want 100", got)
	}
}

// TestSnapshotIsPointInTime pins the SaveFile consistency fix: a
// Snapshot taken while appends are in flight must be a state the log
// actually occupied. Because sequence numbers are issued by one global
// counter, a consistent cut contains exactly the sequences 1..max with
// no gaps; the old per-shard-at-a-time marshal could capture seq N
// from one shard while missing seq N-1 still being appended to another.
func TestSnapshotIsPointInTime(t *testing.T) {
	l := NewLog()
	const total = 4000
	apps := []string{"snap.a", "snap.b", "snap.c"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			l.Append(&Entry{App: apps[i%len(apps)], Interface: "I", Method: "m"})
		}
	}()
	check := func(snap []*Entry) uint64 {
		t.Helper()
		seen := make(map[uint64]bool, len(snap))
		var max uint64
		for i, e := range snap {
			if i > 0 && e.Seq <= snap[i-1].Seq {
				t.Fatalf("snapshot not in sequence order at %d", i)
			}
			seen[e.Seq] = true
			if e.Seq > max {
				max = e.Seq
			}
		}
		if uint64(len(seen)) != max {
			t.Fatalf("snapshot has %d entries but max seq %d: not a point-in-time cut", len(seen), max)
		}
		return max
	}
	for {
		check(l.Snapshot())
		select {
		case <-done:
			// A snapshot taken after the appender is done sees everything.
			if max := check(l.Snapshot()); max != total {
				t.Fatalf("final snapshot has max seq %d, want %d", max, total)
			}
			return
		default:
		}
	}
}
