// Package record implements Flux's Selective Record mechanism (paper §3.2).
//
// A Recorder interposes on Binder transactions (via binder.Interposer) and
// consults the compiled decoration rules of each registered service
// interface. Calls to @record-decorated methods are appended to a per-app
// call log; each new call first evaluates its @drop/@if clauses against the
// log and removes entries it has made stale, keeping the log small.
//
// Drop semantics (from Table 1 and Figures 7/9 of the paper, with one
// clarification): when a call to method M matches previously recorded calls
// of the methods in M's @drop list — a previous call matches if, for any one
// @if/@elif signature, every named argument is equal — the matching entries
// are removed from the log. The keyword "this" makes M itself a drop
// target. Additionally, if "this" is in the drop list and the match removed
// an entry of a method *other than* M, the triggering call itself is not
// recorded: the pair annihilated each other (enqueueNotification +
// cancelNotification). A match that only removed previous calls to M itself
// records the new call, because it *replaces* the old state
// (IAlarmManager.set called twice with the same PendingIntent).
package record

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"flux/internal/aidl"
	"flux/internal/binder"
)

// Entry is one recorded service call.
type Entry struct {
	Seq       uint64
	App       string // package name of the calling app
	Service   string // ServiceManager registration name
	Interface string // interface descriptor
	Method    string
	Code      uint32
	Handle    binder.Handle // caller-side handle the call was issued on
	At        time.Time     // virtual time of the call
	Data      []byte        // marshalled request parcel
	Reply     []byte        // marshalled reply parcel; nil for oneway calls
}

// ReplyParcel decodes the entry's reply parcel, or returns nil for oneway.
func (e *Entry) ReplyParcel() (*binder.Parcel, error) {
	if e.Reply == nil {
		return nil, nil
	}
	return binder.UnmarshalParcel(e.Reply)
}

// Parcel decodes the entry's request parcel.
func (e *Entry) Parcel() (*binder.Parcel, error) {
	return binder.UnmarshalParcel(e.Data)
}

// Size returns the entry's serialized size in bytes, used for transfer
// accounting during migration.
func (e *Entry) Size() int {
	return 8 + 4 + 4 + 8 + // seq, code, handle, time
		4*4 + len(e.App) + len(e.Service) + len(e.Interface) + len(e.Method) +
		4 + len(e.Data) + 4 + len(e.Reply)
}

// Log is the persistent call log — the simulation's stand-in for the SQLite
// store the paper uses. Entries are per-app; pruning and extraction are by
// app so a migration ships only the migrating app's calls.
type Log struct {
	mu      sync.Mutex
	nextSeq uint64
	entries []*Entry
	dropped uint64
}

// NewLog returns an empty call log.
func NewLog() *Log { return &Log{nextSeq: 1} }

// Append adds an entry, assigning its sequence number.
func (l *Log) Append(e *Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.entries = append(l.entries, e)
}

// Remove deletes entries matching pred for the given app, returning how
// many were removed.
func (l *Log) Remove(app string, pred func(*Entry) bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.entries[:0]
	removed := 0
	for _, e := range l.entries {
		if e.App == app && pred(e) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	l.entries = kept
	l.dropped += uint64(removed)
	return removed
}

// AppEntries returns the app's entries in sequence order.
func (l *Log) AppEntries(app string) []*Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Entry
	for _, e := range l.entries {
		if e.App == app {
			cp := *e
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DropApp removes every entry for app (used after a successful migration
// out, and when an app is uninstalled).
func (l *Log) DropApp(app string) int {
	return l.Remove(app, func(*Entry) bool { return true })
}

// Len reports the number of live entries across all apps.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// DroppedTotal reports how many entries pruning has discarded over the
// log's lifetime — the savings Selective Record buys over full record.
func (l *Log) DroppedTotal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// SizeBytes reports the serialized size of the app's log slice.
func (l *Log) SizeBytes(app string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.App == app {
			n += e.Size()
		}
	}
	return n
}

// MarshalApp serializes the app's entries for transfer inside a checkpoint.
func (l *Log) MarshalApp(app string) []byte {
	entries := l.AppEntries(app)
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint64(buf, e.Seq)
		buf = binary.BigEndian.AppendUint32(buf, e.Code)
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.Handle))
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.At.UnixNano()))
		for _, s := range []string{e.App, e.Service, e.Interface, e.Method} {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Data)))
		buf = append(buf, e.Data...)
		if e.Reply == nil {
			buf = binary.BigEndian.AppendUint32(buf, ^uint32(0))
		} else {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Reply)))
			buf = append(buf, e.Reply...)
		}
	}
	return buf
}

// UnmarshalEntries decodes a log slice serialized by MarshalApp.
func UnmarshalEntries(data []byte) ([]*Entry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("record: truncated log: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	out := make([]*Entry, 0, n)
	readStr := func() (string, error) {
		if len(data) < 4 {
			return "", fmt.Errorf("record: truncated string length")
		}
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return "", fmt.Errorf("record: truncated string payload")
		}
		s := string(data[:l])
		data = data[l:]
		return s, nil
	}
	for i := uint32(0); i < n; i++ {
		if len(data) < 24 {
			return nil, fmt.Errorf("record: truncated entry %d", i)
		}
		e := &Entry{}
		e.Seq = binary.BigEndian.Uint64(data)
		e.Code = binary.BigEndian.Uint32(data[8:])
		e.Handle = binder.Handle(int32(binary.BigEndian.Uint32(data[12:])))
		e.At = time.Unix(0, int64(binary.BigEndian.Uint64(data[16:]))).UTC()
		data = data[24:]
		var err error
		if e.App, err = readStr(); err != nil {
			return nil, err
		}
		if e.Service, err = readStr(); err != nil {
			return nil, err
		}
		if e.Interface, err = readStr(); err != nil {
			return nil, err
		}
		if e.Method, err = readStr(); err != nil {
			return nil, err
		}
		if len(data) < 4 {
			return nil, fmt.Errorf("record: truncated entry %d payload length", i)
		}
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, fmt.Errorf("record: truncated entry %d payload", i)
		}
		e.Data = append([]byte(nil), data[:l]...)
		data = data[l:]
		if len(data) < 4 {
			return nil, fmt.Errorf("record: truncated entry %d reply length", i)
		}
		rl := binary.BigEndian.Uint32(data)
		data = data[4:]
		if rl != ^uint32(0) {
			if uint32(len(data)) < rl {
				return nil, fmt.Errorf("record: truncated entry %d reply", i)
			}
			e.Reply = append([]byte(nil), data[:rl]...)
			data = data[rl:]
		}
		out = append(out, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes after log", len(data))
	}
	return out, nil
}

// registeredInterface couples an interface with its compiled rules.
type registeredInterface struct {
	itf     *aidl.Interface
	service string
	rules   map[string]aidl.Rule // by method name
	full    bool                 // record every method (ablation mode)
}

// Recorder implements Selective Record. Install it on a device's Binder
// driver with driver.AddInterposer(recorder).
type Recorder struct {
	log   *Log
	now   func() time.Time
	pkgOf func(pid int) (string, bool)

	mu         sync.Mutex
	interfaces map[string]*registeredInterface // by descriptor
	paused     map[string]bool                 // apps with recording paused (mid-migration)
	observed   uint64                          // all decorated-interface calls seen
	recorded   uint64                          // calls actually appended
}

// Config carries the Recorder's environment hooks.
type Config struct {
	// Now supplies virtual time for entry timestamps.
	Now func() time.Time
	// PackageOf resolves a calling pid to its app package name. Calls from
	// unresolvable pids (system daemons) are not recorded.
	PackageOf func(pid int) (string, bool)
}

// NewRecorder creates a Recorder writing to log.
func NewRecorder(log *Log, cfg Config) *Recorder {
	if cfg.Now == nil {
		panic("record: Config.Now is required")
	}
	if cfg.PackageOf == nil {
		panic("record: Config.PackageOf is required")
	}
	return &Recorder{
		log:        log,
		now:        cfg.Now,
		pkgOf:      cfg.PackageOf,
		interfaces: make(map[string]*registeredInterface),
		paused:     make(map[string]bool),
	}
}

// Log returns the recorder's backing call log.
func (r *Recorder) Log() *Log { return r.log }

// SetPackageResolver replaces the pid→package hook. The device assembly
// needs this because the recorder must exist before the framework runtime
// that provides the real resolver.
func (r *Recorder) SetPackageResolver(fn func(pid int) (string, bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pkgOf = fn
}

// RegisterInterface makes the recorder aware of a decorated service
// interface registered under the given ServiceManager name.
func (r *Recorder) RegisterInterface(serviceName string, itf *aidl.Interface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := &registeredInterface{itf: itf, service: serviceName, rules: make(map[string]aidl.Rule)}
	for _, rule := range aidl.Rules(itf) {
		reg.rules[rule.Method] = rule
	}
	r.interfaces[itf.Name] = reg
}

// SetFullRecord switches an interface to full (undecorated) recording,
// the baseline for the selective-vs-full ablation.
func (r *Recorder) SetFullRecord(descriptor string, full bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg, ok := r.interfaces[descriptor]; ok {
		reg.full = full
	}
}

// Pause stops recording for one app while it migrates out.
func (r *Recorder) Pause(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused[app] = true
}

// Resume re-enables recording for an app.
func (r *Recorder) Resume(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.paused, app)
}

// Stats reports how many decorated-interface calls were observed and how
// many were recorded (after selective suppression).
func (r *Recorder) Stats() (observed, recorded uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.observed, r.recorded
}

// ObserveTransaction implements binder.Interposer.
func (r *Recorder) ObserveTransaction(callingPID int, node *binder.Node, call *binder.Call) {
	r.mu.Lock()
	reg, ok := r.interfaces[node.Descriptor()]
	pkgOf := r.pkgOf
	r.mu.Unlock()
	if !ok {
		return
	}
	app, ok := pkgOf(callingPID)
	if !ok {
		return
	}
	r.mu.Lock()
	if r.paused[app] {
		r.mu.Unlock()
		return
	}
	r.observed++
	r.mu.Unlock()

	m := reg.itf.MethodByCode(call.Code)
	if m == nil {
		return
	}
	if reg.full {
		r.append(app, reg, m, call)
		return
	}
	rule, decorated := reg.rules[m.Name]
	if !decorated {
		return
	}
	suppress := r.applyDrops(app, reg, m, rule, call)
	if !suppress {
		r.append(app, reg, m, call)
	}
}

// applyDrops evaluates the rule's drop clauses against the log and reports
// whether the triggering call itself should be suppressed.
func (r *Recorder) applyDrops(app string, reg *registeredInterface, m *aidl.Method, rule aidl.Rule, call *binder.Call) bool {
	if len(rule.DropMethods) == 0 {
		return false
	}
	targets := make(map[string]bool, len(rule.DropMethods))
	for _, name := range rule.DropMethods {
		if name == "this" {
			targets[m.Name] = true
		} else {
			targets[name] = true
		}
	}
	// Precompute the triggering call's signature values.
	sigVals := make([]map[string]string, len(rule.Signatures))
	for i, sig := range rule.Signatures {
		vals := make(map[string]string, len(sig))
		for _, arg := range sig {
			v, err := aidl.ArgString(m, call.Data, arg)
			if err != nil {
				return false // malformed call; record nothing, drop nothing
			}
			vals[arg] = v
		}
		sigVals[i] = vals
	}
	droppedOther := false
	r.log.Remove(app, func(e *Entry) bool {
		if e.Interface != reg.itf.Name || !targets[e.Method] {
			return false
		}
		em := reg.itf.Method(e.Method)
		if em == nil {
			return false
		}
		if len(rule.Signatures) == 0 {
			if e.Method != m.Name {
				droppedOther = true
			}
			return true
		}
		ep, err := e.Parcel()
		if err != nil {
			return false
		}
		for i, sig := range rule.Signatures {
			match := true
			for _, arg := range sig {
				ev, err := aidl.ArgString(em, ep, arg)
				if err != nil || ev != sigVals[i][arg] {
					match = false
					break
				}
			}
			if match {
				if e.Method != m.Name {
					droppedOther = true
				}
				return true
			}
		}
		return false
	})
	return rule.DropsSelf() && droppedOther
}

func (r *Recorder) append(app string, reg *registeredInterface, m *aidl.Method, call *binder.Call) {
	e := &Entry{
		App:       app,
		Service:   reg.service,
		Interface: reg.itf.Name,
		Method:    m.Name,
		Code:      call.Code,
		Handle:    call.Handle,
		At:        r.now(),
		Data:      call.Data.Marshal(),
	}
	if call.Reply != nil {
		e.Reply = call.Reply.Marshal()
	}
	r.log.Append(e)
	r.mu.Lock()
	r.recorded++
	r.mu.Unlock()
}
