// Package record implements Flux's Selective Record mechanism (paper §3.2).
//
// A Recorder interposes on Binder transactions (via binder.Interposer) and
// consults the compiled decoration rules of each registered service
// interface. Calls to @record-decorated methods are appended to a per-app
// call log; each new call first evaluates its @drop/@if clauses against the
// log and removes entries it has made stale, keeping the log small.
//
// Drop semantics (from Table 1 and Figures 7/9 of the paper, with one
// clarification): when a call to method M matches previously recorded calls
// of the methods in M's @drop list — a previous call matches if, for any one
// @if/@elif signature, every named argument is equal — the matching entries
// are removed from the log. The keyword "this" makes M itself a drop
// target. Additionally, if "this" is in the drop list and the match removed
// an entry of a method *other than* M, the triggering call itself is not
// recorded: the pair annihilated each other (enqueueNotification +
// cancelNotification). A match that only removed previous calls to M itself
// records the new call, because it *replaces* the old state
// (IAlarmManager.set called twice with the same PendingIntent).
//
// Because the recorder sits on every decorated Binder transaction, the
// package treats recording as a hot path: the call log is sharded per app
// (see log.go), @drop evaluation consults a per-(interface, method) index
// instead of scanning the log, and each entry caches the canonical string
// form of its arguments at append time so signature matching never
// re-parses parcels under a lock.
package record

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/obs"
)

// Entry is one recorded service call.
type Entry struct {
	Seq       uint64
	App       string // package name of the calling app
	Service   string // ServiceManager registration name
	Interface string // interface descriptor
	Method    string
	Code      uint32
	Handle    binder.Handle // caller-side handle the call was issued on
	At        time.Time     // virtual time of the call
	Data      []byte        // marshalled request parcel
	Reply     []byte        // marshalled reply parcel; nil for oneway calls

	// args caches the canonical string form of each request argument,
	// keyed by parameter name — the values @if signature guards compare.
	// The Recorder fills it at append time from the live parcel; entries
	// loaded from disk or appended directly compute it lazily on first
	// signature match. Immutable once set; guarded by the shard lock
	// until then.
	args map[string]string

	// dead marks a tombstoned entry awaiting compaction. Guarded by the
	// owning shard's lock; entries returned by AppEntries are copies and
	// always live.
	dead bool
}

// ReplyParcel decodes the entry's reply parcel, or returns nil for oneway.
func (e *Entry) ReplyParcel() (*binder.Parcel, error) {
	if e.Reply == nil {
		return nil, nil
	}
	return binder.UnmarshalParcel(e.Reply)
}

// Parcel decodes the entry's request parcel.
func (e *Entry) Parcel() (*binder.Parcel, error) {
	return binder.UnmarshalParcel(e.Data)
}

// Size returns the entry's serialized size in bytes, used for transfer
// accounting during migration.
func (e *Entry) Size() int {
	return 8 + 4 + 4 + 8 + // seq, code, handle, time
		4*4 + len(e.App) + len(e.Service) + len(e.Interface) + len(e.Method) +
		4 + len(e.Data) + 4 + len(e.Reply)
}

// cacheArgs extracts the canonical string form of every parameter of m
// from the request parcel, the precomputation that lets @if matching skip
// parcel parsing. Parameters whose value cannot be rendered are simply
// absent, which makes them match nothing — the same outcome the parsing
// path produced on error.
func cacheArgs(m *aidl.Method, data *binder.Parcel) map[string]string {
	args := make(map[string]string, len(m.Params))
	for i, p := range m.Params {
		if v, err := data.EntryString(i); err == nil {
			args[p.Name] = v
		}
	}
	return args
}

// argValues returns the entry's cached argument strings, computing them
// from the request parcel on first use. Callers must hold the owning
// shard's lock (the Log's pruning predicates do), which also publishes
// the memoized map safely.
func (e *Entry) argValues(m *aidl.Method) map[string]string {
	if e.args == nil {
		p, err := binder.UnmarshalParcel(e.Data)
		if err != nil {
			e.args = map[string]string{} // malformed: matches nothing
		} else {
			e.args = cacheArgs(m, p)
		}
	}
	return e.args
}

// maxEntryPrealloc bounds the slice capacity hinted by an untrusted
// entry count, so a forged header cannot drive a multi-gigabyte
// allocation before the first decode failure.
const maxEntryPrealloc = 1 << 16

// UnmarshalEntries decodes a log slice serialized by MarshalApp.
func UnmarshalEntries(data []byte) ([]*Entry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("record: truncated log: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	prealloc := int(n)
	if prealloc > maxEntryPrealloc {
		prealloc = maxEntryPrealloc
	}
	out := make([]*Entry, 0, prealloc)
	for i := uint32(0); i < n; i++ {
		e, consumed, err := decodeEntry(data)
		if err != nil {
			return nil, fmt.Errorf("record: entry %d: %w", i, err)
		}
		data = data[consumed:]
		out = append(out, e)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes after log", len(data))
	}
	return out, nil
}

// SplitEntries slices a MarshalApp blob into its per-entry wire
// records without copying. These per-entry slices are exactly the
// payloads the seglog hash chain is computed over, so the home device
// (building the anchor) and the guest (verifying before replay) frame
// the log identically.
func SplitEntries(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("record: truncated log: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	prealloc := int(n)
	if prealloc > maxEntryPrealloc {
		prealloc = maxEntryPrealloc
	}
	out := make([][]byte, 0, prealloc)
	for i := uint32(0); i < n; i++ {
		_, consumed, err := decodeEntry(data)
		if err != nil {
			return nil, fmt.Errorf("record: entry %d: %w", i, err)
		}
		out = append(out, data[:consumed])
		data = data[consumed:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("record: %d trailing bytes after log", len(data))
	}
	return out, nil
}

// decodeEntry decodes one entry from the head of data, returning the
// bytes consumed. All length guards compare in uint64 space: the old
// `uint32(len(data)) < l` form wrapped for buffers ≥ 4 GiB and could
// accept a short read.
func decodeEntry(data []byte) (*Entry, int, error) {
	const fixed = 24 // seq, code, handle, time
	if len(data) < fixed {
		return nil, 0, fmt.Errorf("record: truncated entry header")
	}
	e := &Entry{}
	e.Seq = binary.BigEndian.Uint64(data)
	e.Code = binary.BigEndian.Uint32(data[8:])
	e.Handle = binder.Handle(int32(binary.BigEndian.Uint32(data[12:])))
	e.At = time.Unix(0, int64(binary.BigEndian.Uint64(data[16:]))).UTC()
	off := fixed
	readStr := func() (string, error) {
		if uint64(len(data))-uint64(off) < 4 {
			return "", fmt.Errorf("record: truncated string length")
		}
		l := binary.BigEndian.Uint32(data[off:])
		off += 4
		if uint64(l) > uint64(len(data)-off) {
			return "", fmt.Errorf("record: string declares %d bytes, %d remain", l, len(data)-off)
		}
		s := string(data[off : off+int(l)])
		off += int(l)
		return s, nil
	}
	var err error
	if e.App, err = readStr(); err != nil {
		return nil, 0, err
	}
	if e.Service, err = readStr(); err != nil {
		return nil, 0, err
	}
	if e.Interface, err = readStr(); err != nil {
		return nil, 0, err
	}
	if e.Method, err = readStr(); err != nil {
		return nil, 0, err
	}
	if uint64(len(data))-uint64(off) < 4 {
		return nil, 0, fmt.Errorf("record: truncated payload length")
	}
	l := binary.BigEndian.Uint32(data[off:])
	off += 4
	if uint64(l) > uint64(len(data)-off) {
		return nil, 0, fmt.Errorf("record: payload declares %d bytes, %d remain", l, len(data)-off)
	}
	e.Data = append([]byte(nil), data[off:off+int(l)]...)
	off += int(l)
	if uint64(len(data))-uint64(off) < 4 {
		return nil, 0, fmt.Errorf("record: truncated reply length")
	}
	rl := binary.BigEndian.Uint32(data[off:])
	off += 4
	if rl != ^uint32(0) {
		if uint64(rl) > uint64(len(data)-off) {
			return nil, 0, fmt.Errorf("record: reply declares %d bytes, %d remain", rl, len(data)-off)
		}
		// A zero-length reply decodes to a non-nil empty slice so the
		// nil-means-oneway sentinel round-trips: EntryWire(decodeEntry(w))
		// == w, which anchor verification on the guest depends on.
		e.Reply = append(make([]byte, 0, rl), data[off:off+int(rl)]...)
		off += int(rl)
	}
	return e, off, nil
}

// registeredInterface couples an interface with its compiled rules. The
// itf, service, and rules fields are immutable after registration; full
// is guarded by the Recorder's mutex.
type registeredInterface struct {
	itf     *aidl.Interface
	service string
	rules   map[string]aidl.Rule // by method name
	full    bool                 // record every method (ablation mode)
}

// Recorder implements Selective Record. Install it on a device's Binder
// driver with driver.AddInterposer(recorder).
type Recorder struct {
	log *Log
	now func() time.Time

	mu         sync.RWMutex
	pkgOf      func(pid int) (string, bool)
	interfaces map[string]*registeredInterface // by descriptor
	paused     map[string]bool                 // apps with recording paused (mid-migration)

	observed atomic.Uint64 // all decorated-interface calls seen
	recorded atomic.Uint64 // calls actually appended
	dropped  atomic.Uint64 // triggering calls suppressed by @drop("this") annihilation
}

// Config carries the Recorder's environment hooks.
type Config struct {
	// Now supplies virtual time for entry timestamps.
	Now func() time.Time
	// PackageOf resolves a calling pid to its app package name. Calls from
	// unresolvable pids (system daemons) are not recorded.
	PackageOf func(pid int) (string, bool)
}

// NewRecorder creates a Recorder writing to log.
func NewRecorder(log *Log, cfg Config) *Recorder {
	if cfg.Now == nil {
		panic("record: Config.Now is required")
	}
	if cfg.PackageOf == nil {
		panic("record: Config.PackageOf is required")
	}
	return &Recorder{
		log:        log,
		now:        cfg.Now,
		pkgOf:      cfg.PackageOf,
		interfaces: make(map[string]*registeredInterface),
		paused:     make(map[string]bool),
	}
}

// Log returns the recorder's backing call log.
func (r *Recorder) Log() *Log { return r.log }

// SetPackageResolver replaces the pid→package hook. The device assembly
// needs this because the recorder must exist before the framework runtime
// that provides the real resolver.
func (r *Recorder) SetPackageResolver(fn func(pid int) (string, bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pkgOf = fn
}

// RegisterInterface makes the recorder aware of a decorated service
// interface registered under the given ServiceManager name.
func (r *Recorder) RegisterInterface(serviceName string, itf *aidl.Interface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := &registeredInterface{itf: itf, service: serviceName, rules: make(map[string]aidl.Rule)}
	for _, rule := range aidl.Rules(itf) {
		reg.rules[rule.Method] = rule
	}
	r.interfaces[itf.Name] = reg
}

// SetFullRecord switches an interface to full (undecorated) recording,
// the baseline for the selective-vs-full ablation.
func (r *Recorder) SetFullRecord(descriptor string, full bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg, ok := r.interfaces[descriptor]; ok {
		reg.full = full
	}
}

// Pause stops recording for one app while it migrates out.
func (r *Recorder) Pause(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused[app] = true
}

// Resume re-enables recording for an app.
func (r *Recorder) Resume(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.paused, app)
}

// Stats summarizes the recorder's lifetime counters.
type Stats struct {
	// Observed counts every call seen on a decorated interface
	// (including undecorated methods of those interfaces).
	Observed uint64
	// Recorded counts calls actually appended to the log.
	Recorded uint64
	// DroppedByRule counts triggering calls suppressed before ever
	// reaching the log: a @drop list containing "this" matched a
	// previous call of another method, annihilating the pair
	// (enqueueNotification + cancelNotification).
	DroppedByRule uint64
	// Pruned counts previously recorded entries that @drop evaluation
	// later removed from the log (the log-bounding savings of Selective
	// Record). Wholesale DropApp cleanup is excluded.
	Pruned uint64
}

// Stats reports the recorder's observed/recorded/dropped/pruned
// counters (after selective suppression).
func (r *Recorder) Stats() Stats {
	return Stats{
		Observed:      r.observed.Load(),
		Recorded:      r.recorded.Load(),
		DroppedByRule: r.dropped.Load(),
		Pruned:        r.log.DroppedTotal(),
	}
}

// ObserveTransaction implements binder.Interposer. It takes only read
// locks on the recorder, so transactions from different apps proceed in
// parallel; all per-call mutable state lives in the sharded log.
func (r *Recorder) ObserveTransaction(callingPID int, node *binder.Node, call *binder.Call) {
	r.mu.RLock()
	reg, ok := r.interfaces[node.Descriptor()]
	pkgOf := r.pkgOf
	r.mu.RUnlock()
	if !ok {
		return
	}
	app, ok := pkgOf(callingPID)
	if !ok {
		return
	}
	r.mu.RLock()
	paused := r.paused[app]
	full := reg.full
	r.mu.RUnlock()
	if paused {
		return
	}
	r.observed.Add(1)
	telemetry := obs.Enabled()
	if telemetry {
		obs.M().Counter(MetricObserved, "service", reg.service).Inc()
	}

	m := reg.itf.MethodByCode(call.Code)
	if m == nil {
		return
	}
	if full {
		r.append(app, reg, m, call)
		return
	}
	rule, decorated := reg.rules[m.Name]
	if !decorated {
		return
	}
	suppress := r.applyDrops(app, reg, m, rule, call)
	if suppress {
		r.dropped.Add(1)
		if telemetry {
			obs.M().Counter(MetricSuppressed, "service", reg.service).Inc()
		}
		return
	}
	r.append(app, reg, m, call)
}

// applyDrops evaluates the rule's drop clauses against the log and reports
// whether the triggering call itself should be suppressed. It visits only
// the index buckets of the rule's drop-target methods and compares cached
// argument strings, never re-parsing a recorded parcel.
func (r *Recorder) applyDrops(app string, reg *registeredInterface, m *aidl.Method, rule aidl.Rule, call *binder.Call) bool {
	if len(rule.DropMethods) == 0 {
		return false
	}
	seen := make(map[string]bool, len(rule.DropMethods))
	targets := make([]string, 0, len(rule.DropMethods))
	for _, name := range rule.DropMethods {
		if name == "this" {
			name = m.Name
		}
		if !seen[name] {
			seen[name] = true
			targets = append(targets, name)
		}
	}
	// Precompute the triggering call's signature values from its live
	// parcel.
	sigVals := make([]map[string]string, len(rule.Signatures))
	for i, sig := range rule.Signatures {
		vals := make(map[string]string, len(sig))
		for _, arg := range sig {
			v, err := aidl.ArgString(m, call.Data, arg)
			if err != nil {
				return false // malformed call; record nothing, drop nothing
			}
			vals[arg] = v
		}
		sigVals[i] = vals
	}
	droppedOther := false
	removed := r.log.PruneMatching(app, reg.itf.Name, targets, func(e *Entry) bool {
		em := reg.itf.Method(e.Method)
		if em == nil {
			return false
		}
		if len(rule.Signatures) == 0 {
			if e.Method != m.Name {
				droppedOther = true
			}
			return true
		}
		vals := e.argValues(em)
		for i, sig := range rule.Signatures {
			match := true
			for _, arg := range sig {
				if ev, ok := vals[arg]; !ok || ev != sigVals[i][arg] {
					match = false
					break
				}
			}
			if match {
				if e.Method != m.Name {
					droppedOther = true
				}
				return true
			}
		}
		return false
	})
	if removed > 0 && obs.Enabled() {
		obs.M().Counter(MetricPruned, "service", reg.service).Add(uint64(removed))
	}
	return rule.DropsSelf() && droppedOther
}

func (r *Recorder) append(app string, reg *registeredInterface, m *aidl.Method, call *binder.Call) {
	e := &Entry{
		App:       app,
		Service:   reg.service,
		Interface: reg.itf.Name,
		Method:    m.Name,
		Code:      call.Code,
		Handle:    call.Handle,
		At:        r.now(),
		Data:      call.Data.Marshal(),
		args:      cacheArgs(m, call.Data),
	}
	if call.Reply != nil {
		e.Reply = call.Reply.Marshal()
	}
	r.log.Append(e)
	r.recorded.Add(1)
	if obs.Enabled() {
		obs.M().Counter(MetricRecorded, "service", reg.service).Inc()
	}
}
