package record

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flux/internal/binder"
)

func sampleEntry(app, method string, seq int) *Entry {
	p := binder.NewParcel()
	p.WriteInt32(int32(seq))
	p.WriteString("payload")
	return &Entry{
		App: app, Service: "notification", Interface: "INotificationManager",
		Method: method, Code: 1, Handle: 2,
		At:   time.Unix(0, int64(seq)*1e9).UTC(),
		Data: p.Marshal(),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append(sampleEntry("com.a", "enqueueNotification", i))
	}
	l.Append(sampleEntry("com.b", "cancelNotification", 9))

	path := filepath.Join(t.TempDir(), "record.flxl")
	if err := l.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got := len(back.AppEntries("com.a")); got != 5 {
		t.Errorf("com.a entries = %d", got)
	}
	if got := len(back.AppEntries("com.b")); got != 1 {
		t.Errorf("com.b entries = %d", got)
	}
	e := back.AppEntries("com.a")[2]
	if e.Method != "enqueueNotification" || e.Handle != 2 {
		t.Errorf("entry = %+v", e)
	}
	p, err := e.Parcel()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustInt32(); got != 2 {
		t.Errorf("payload seq = %d", got)
	}
}

func TestLoadFileRejectsCorruption(t *testing.T) {
	l := NewLog()
	l.Append(sampleEntry("com.a", "m", 1))
	path := filepath.Join(t.TempDir(), "record.flxl")
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle: the checksum must catch it.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("LoadFile accepted corrupted file")
	}
}

func TestLoadFileRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a log"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("LoadFile accepted junk")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadFile accepted missing file")
	}
}

// TestLoadFileReadsLegacyV1 pins the migration story: files written by
// the pre-seglog container must keep loading.
func TestLoadFileReadsLegacyV1(t *testing.T) {
	l := NewLog()
	l.Append(sampleEntry("com.a", "set", 1))
	l.Append(sampleEntry("com.b", "enqueueNotification", 2))
	// Re-create the v1 container by hand (SaveFile now writes v2).
	var buf []byte
	buf = append(buf, logFileMagic[:]...)
	buf = append(buf, logFileVersion)
	apps := l.Apps()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(apps)))
	for _, app := range apps {
		blob := l.MarshalApp(app)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(app)))
		buf = append(buf, app...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	path := filepath.Join(t.TempDir(), "legacy.flxl")
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile(v1): %v", err)
	}
	if back.Len() != 2 {
		t.Errorf("legacy load has %d entries, want 2", back.Len())
	}
}

// TestRecoverFileHealsTornTail: a crash mid-write leaves a torn v2
// file; RecoverFile must come back with a prefix, never an error.
func TestRecoverFileHealsTornTail(t *testing.T) {
	l := NewLog()
	for i := 0; i < 12; i++ {
		l.Append(sampleEntry("com.a", "set", i))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "record.flxg")
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strict load refuses the torn file; tolerant recovery heals it.
	torn := filepath.Join(dir, "torn.flxg")
	if err := os.WriteFile(torn, data[:len(data)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(torn); err == nil {
		t.Fatal("strict LoadFile accepted a torn file")
	}
	back, rec, err := RecoverFile(torn)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if !rec.Truncated {
		t.Error("recovery did not report truncation")
	}
	if got := back.Len(); got == 0 || got > 12 {
		t.Errorf("recovered %d entries", got)
	}
}

func TestSaveFileEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.flxl")
	if err := NewLog().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d entries", back.Len())
	}
}

// TestAnchorVerifyRoundTrip: the home-side anchor over a MarshalApp
// blob verifies the honest blob, and any single flipped payload bit —
// or a re-decoded entry set — is caught.
func TestAnchorVerifyRoundTrip(t *testing.T) {
	l := NewLog()
	for i := 0; i < 20; i++ {
		l.Append(sampleEntry("com.a", "set", i))
	}
	blob := l.MarshalApp("com.a")
	anchor, err := AnchorWire(blob)
	if err != nil {
		t.Fatalf("AnchorWire: %v", err)
	}
	if err := VerifyAnchor(blob, anchor); err != nil {
		t.Fatalf("honest blob failed verification: %v", err)
	}
	// The decoded-entries path (what replay runs) verifies too — the
	// EntryWire fixed point holds.
	entries, err := UnmarshalEntries(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEntriesAnchor(entries, anchor); err != nil {
		t.Fatalf("decoded entries failed verification: %v", err)
	}
	// One flipped bit anywhere in the blob body fails (or fails to
	// parse — either way, never verifies clean).
	for off := 4; off < len(blob); off += 7 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x01
		if err := VerifyAnchor(mut, anchor); err == nil {
			t.Fatalf("flipped bit at offset %d verified clean", off)
		}
	}
	// Dropping the last entry fails the count check.
	short := NewLog()
	for _, e := range entries[:19] {
		short.Append(e)
	}
	if err := VerifyEntriesAnchor(UnmarshalMust(t, short.MarshalApp("com.a")), anchor); err == nil {
		t.Fatal("shortened log verified clean")
	}
}

func UnmarshalMust(t *testing.T, blob []byte) []*Entry {
	t.Helper()
	es, err := UnmarshalEntries(blob)
	if err != nil {
		t.Fatal(err)
	}
	return es
}

// TestEntryWireFixedPoint: EntryWire(decode(w)) == w for entries with
// nil, empty, and non-empty replies — the property anchor verification
// on the guest depends on.
func TestEntryWireFixedPoint(t *testing.T) {
	cases := []*Entry{
		sampleEntry("com.a", "m", 1), // nil reply
		func() *Entry { e := sampleEntry("com.a", "m", 2); e.Reply = []byte{}; return e }(),     // empty reply
		func() *Entry { e := sampleEntry("com.a", "m", 3); e.Reply = []byte{9, 8}; return e }(), // real reply
	}
	for i, e := range cases {
		w := EntryWire(e)
		back, consumed, err := decodeEntry(w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if consumed != len(w) {
			t.Fatalf("case %d: consumed %d of %d", i, consumed, len(w))
		}
		if got := EntryWire(back); !bytes.Equal(got, w) {
			t.Fatalf("case %d: EntryWire not a fixed point", i)
		}
		if (e.Reply == nil) != (back.Reply == nil) {
			t.Fatalf("case %d: reply nilness drifted", i)
		}
	}
}
