package record

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"flux/internal/binder"
)

func sampleEntry(app, method string, seq int) *Entry {
	p := binder.NewParcel()
	p.WriteInt32(int32(seq))
	p.WriteString("payload")
	return &Entry{
		App: app, Service: "notification", Interface: "INotificationManager",
		Method: method, Code: 1, Handle: 2,
		At:   time.Unix(0, int64(seq)*1e9).UTC(),
		Data: p.Marshal(),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append(sampleEntry("com.a", "enqueueNotification", i))
	}
	l.Append(sampleEntry("com.b", "cancelNotification", 9))

	path := filepath.Join(t.TempDir(), "record.flxl")
	if err := l.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got := len(back.AppEntries("com.a")); got != 5 {
		t.Errorf("com.a entries = %d", got)
	}
	if got := len(back.AppEntries("com.b")); got != 1 {
		t.Errorf("com.b entries = %d", got)
	}
	e := back.AppEntries("com.a")[2]
	if e.Method != "enqueueNotification" || e.Handle != 2 {
		t.Errorf("entry = %+v", e)
	}
	p, err := e.Parcel()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustInt32(); got != 2 {
		t.Errorf("payload seq = %d", got)
	}
}

func TestLoadFileRejectsCorruption(t *testing.T) {
	l := NewLog()
	l.Append(sampleEntry("com.a", "m", 1))
	path := filepath.Join(t.TempDir(), "record.flxl")
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle: the checksum must catch it.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("LoadFile accepted corrupted file")
	}
}

func TestLoadFileRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a log"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("LoadFile accepted junk")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadFile accepted missing file")
	}
}

func TestSaveFileEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.flxl")
	if err := NewLog().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d entries", back.Len())
	}
}
