package kernel

import (
	"testing"
	"testing/quick"
	"time"
)

func newProc(t *testing.T, k *Kernel, name string) *Process {
	t.Helper()
	p, err := k.CreateProcess(ProcessOptions{Name: name, UID: 10001})
	if err != nil {
		t.Fatalf("CreateProcess(%s): %v", name, err)
	}
	return p
}

func TestClockAdvanceFiresInOrder(t *testing.T) {
	c := NewClock()
	var fired []int
	c.AfterFunc(3*time.Second, func(time.Time) { fired = append(fired, 3) })
	c.AfterFunc(1*time.Second, func(time.Time) { fired = append(fired, 1) })
	c.AfterFunc(2*time.Second, func(time.Time) { fired = append(fired, 2) })
	c.Advance(5 * time.Second)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fired = %v, want [1 2 3]", fired)
	}
	if got := c.Now().Sub(Epoch); got != 5*time.Second {
		t.Errorf("Now = Epoch+%v, want Epoch+5s", got)
	}
}

func TestClockTimerNotDueDoesNotFire(t *testing.T) {
	c := NewClock()
	fired := false
	c.AfterFunc(10*time.Second, func(time.Time) { fired = true })
	c.Advance(9 * time.Second)
	if fired {
		t.Error("timer fired early")
	}
	c.Advance(time.Second)
	if !fired {
		t.Error("timer did not fire at deadline")
	}
}

func TestClockCancel(t *testing.T) {
	c := NewClock()
	fired := false
	cancel := c.AfterFunc(time.Second, func(time.Time) { fired = true })
	cancel()
	c.Advance(2 * time.Second)
	if fired {
		t.Error("cancelled timer fired")
	}
	if c.PendingTimers() != 0 {
		t.Errorf("PendingTimers = %d after cancel", c.PendingTimers())
	}
}

func TestClockChainedTimersFireWithinWindow(t *testing.T) {
	c := NewClock()
	var order []string
	c.AfterFunc(1*time.Second, func(time.Time) {
		order = append(order, "first")
		c.AfterFunc(1*time.Second, func(time.Time) { order = append(order, "chained") })
	})
	c.Advance(3 * time.Second)
	if len(order) != 2 || order[0] != "first" || order[1] != "chained" {
		t.Errorf("order = %v, want [first chained]", order)
	}
}

func TestClockPastInstantFiresOnAdvanceZero(t *testing.T) {
	c := NewClock()
	fired := false
	c.At(Epoch.Add(-time.Hour), func(time.Time) { fired = true })
	c.Advance(0)
	if !fired {
		t.Error("past-deadline timer did not fire on Advance(0)")
	}
}

func TestClockDeadlinesSorted(t *testing.T) {
	c := NewClock()
	c.AfterFunc(5*time.Second, func(time.Time) {})
	c.AfterFunc(1*time.Second, func(time.Time) {})
	dl := c.NextDeadlines()
	if len(dl) != 2 || !dl[0].Before(dl[1]) {
		t.Errorf("NextDeadlines = %v, want sorted", dl)
	}
}

func TestProcessLifecycle(t *testing.T) {
	k := New("3.4")
	p := newProc(t, k, "com.example.app")
	if p.PID() != p.VPID() {
		t.Errorf("root-namespace process pid %d != vpid %d", p.PID(), p.VPID())
	}
	if k.Process(p.PID()) != p {
		t.Error("Process lookup failed")
	}
	if p.Binder() == nil {
		t.Fatal("process has no binder state")
	}
	p.Exit()
	if k.Process(p.PID()) != nil {
		t.Error("exited process still registered")
	}
	if !p.Binder().Dead() {
		t.Error("binder state survived process exit")
	}
	p.Exit() // idempotent
}

func TestPIDNamespaceRestorePreservesVPID(t *testing.T) {
	k := New("3.4")
	// Occupy low pids so a restored vpid would collide without a namespace.
	for i := 0; i < 5; i++ {
		newProc(t, k, "filler")
	}
	ns := NewPIDNamespace("wrapper:com.example.app")
	p, err := k.CreateProcess(ProcessOptions{Name: "restored", Namespace: ns, VPID: 2})
	if err != nil {
		t.Fatalf("CreateProcess in namespace: %v", err)
	}
	if p.VPID() != 2 {
		t.Errorf("vpid = %d, want 2", p.VPID())
	}
	if p.PID() == 2 {
		t.Errorf("global pid unexpectedly equals vpid with occupied pid space")
	}
	if got, ok := ns.Resolve(2); !ok || got != p.PID() {
		t.Errorf("Resolve(2) = %d,%t want %d,true", got, ok, p.PID())
	}
	p.Exit()
	if _, ok := ns.Resolve(2); ok {
		t.Error("vpid still bound after exit")
	}
}

func TestPIDNamespaceDuplicateVPID(t *testing.T) {
	k := New("3.4")
	ns := NewPIDNamespace("ns")
	if _, err := k.CreateProcess(ProcessOptions{Name: "a", Namespace: ns, VPID: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateProcess(ProcessOptions{Name: "b", Namespace: ns, VPID: 7}); err == nil {
		t.Fatal("duplicate vpid accepted")
	}
	if _, err := k.CreateProcess(ProcessOptions{Name: "c", Namespace: ns}); err == nil {
		t.Fatal("namespace process without vpid accepted")
	}
}

func TestFDTable(t *testing.T) {
	k := New("3.4")
	p := newProc(t, k, "app")
	fd1, err := p.OpenFD(FDFile, "/data/data/app/db")
	if err != nil {
		t.Fatal(err)
	}
	if fd1 != 3 {
		t.Errorf("first fd = %d, want 3 (after stdio)", fd1)
	}
	fd2, _ := p.OpenFD(FDUnixSocket, "sensor-events")
	if fd2 != fd1+1 {
		t.Errorf("second fd = %d, want %d", fd2, fd1+1)
	}
	if err := p.CloseFD(fd1); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseFD(fd1); err == nil {
		t.Error("double close succeeded")
	}
	fds := p.FDs()
	if len(fds) != 1 || fds[0].Num != fd2 {
		t.Errorf("FDs = %v", fds)
	}
}

func TestOpenFDAtAndDup2(t *testing.T) {
	k := New("3.4")
	p := newProc(t, k, "app")
	if err := p.OpenFDAt(40, FDUnixSocket, "reserved"); err != nil {
		t.Fatal(err)
	}
	if err := p.OpenFDAt(40, FDFile, "clash"); err == nil {
		t.Error("OpenFDAt over open fd succeeded")
	}
	// New connection arrives on some fresh fd; dup2 it into the reserved slot.
	fresh, _ := p.OpenFD(FDUnixSocket, "sensor-new")
	if err := p.Dup2(fresh, 40); err != nil {
		t.Fatal(err)
	}
	got := p.FD(40)
	if got == nil || got.Path != "sensor-new" {
		t.Errorf("fd 40 after dup2 = %+v", got)
	}
	if p.FD(fresh) != nil {
		t.Error("source fd survived dup2")
	}
	next, _ := p.OpenFD(FDFile, "later")
	if next <= 40 {
		t.Errorf("fd allocation did not advance past injected numbers: %d", next)
	}
}

func TestMemorySegments(t *testing.T) {
	k := New("3.4")
	p := newProc(t, k, "app")
	p.MapSegment(MemSegment{Name: "dalvik-heap", Kind: SegHeap, Size: 8 << 20, Entropy: 0.55})
	p.MapSegment(MemSegment{Name: "libapp.so", Kind: SegCode, Size: 2 << 20, Entropy: 0.9})
	p.MapSegment(MemSegment{Name: "gl-textures", Kind: SegGraphics, Size: 16 << 20, Entropy: 0.98})
	if got := p.MemoryBytes(); got != 26<<20 {
		t.Errorf("MemoryBytes = %d", got)
	}
	if got := p.MemoryBytes(SegHeap); got != 8<<20 {
		t.Errorf("MemoryBytes(heap) = %d", got)
	}
	freed := p.UnmapSegments(func(s MemSegment) bool { return s.Kind == SegGraphics })
	if freed != 16<<20 {
		t.Errorf("freed = %d", freed)
	}
	if got := p.MemoryBytes(SegGraphics); got != 0 {
		t.Errorf("graphics bytes after unmap = %d", got)
	}
}

func TestCompressedSizeProperty(t *testing.T) {
	f := func(size int64, entropy float64) bool {
		if size < 0 {
			size = -size
		}
		e := entropy - float64(int64(entropy)) // fract into (-1,1)
		if e < 0 {
			e = -e
		}
		seg := MemSegment{Size: size, Entropy: e}
		cs := seg.CompressedSize()
		return cs >= 0 && cs <= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAshmemDriver(t *testing.T) {
	k := New("3.4")
	if _, err := k.Ashmem.Create("dalvik-zygote", 4<<20, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Ashmem.Create("dalvik-zygote", 1, 100); err == nil {
		t.Error("duplicate region name accepted")
	}
	regions := k.Ashmem.RegionsOwnedBy(100)
	if len(regions) != 1 || regions[0].Size != 4<<20 {
		t.Errorf("RegionsOwnedBy = %v", regions)
	}
	if err := k.Ashmem.Release("dalvik-zygote"); err != nil {
		t.Fatal(err)
	}
	if err := k.Ashmem.Release("dalvik-zygote"); err == nil {
		t.Error("double release succeeded")
	}
}

func TestPmemDriver(t *testing.T) {
	k := New("3.4")
	id, err := k.Pmem.Alloc(64<<20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Pmem.UsedBy(100); got != 64<<20 {
		t.Errorf("UsedBy = %d", got)
	}
	if _, err := k.Pmem.Alloc(256<<20, 101); err == nil {
		t.Error("overcommit accepted")
	}
	if err := k.Pmem.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Pmem.Free(id); err == nil {
		t.Error("double free succeeded")
	}
	k.Pmem.Alloc(1<<20, 100)
	k.Pmem.Alloc(2<<20, 100)
	k.Pmem.Alloc(4<<20, 999)
	if freed := k.Pmem.FreeOwnedBy(100); freed != 3<<20 {
		t.Errorf("FreeOwnedBy = %d", freed)
	}
	if got := k.Pmem.Used(); got != 4<<20 {
		t.Errorf("Used = %d", got)
	}
}

func TestLoggerRingBuffer(t *testing.T) {
	k := New("3.4")
	small := newLoggerDriver(3)
	for i := 0; i < 5; i++ {
		small.Write(100, "flux", "line")
	}
	if got := small.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	if got := len(small.Tail(10)); got != 3 {
		t.Errorf("Tail = %d entries, want 3", got)
	}
	k.Logger.Write(100, "flux", "migrating")
	tail := k.Logger.Tail(1)
	if len(tail) != 1 || tail[0].Msg != "migrating" {
		t.Errorf("Tail = %v", tail)
	}
}

func TestWakelocks(t *testing.T) {
	k := New("3.4")
	if k.Wakelocks.AnyHeld() {
		t.Error("fresh kernel holds wakelocks")
	}
	k.Wakelocks.Acquire("migration")
	k.Wakelocks.Acquire("migration")
	k.Wakelocks.Acquire("audio")
	if got := k.Wakelocks.Held(); len(got) != 2 {
		t.Errorf("Held = %v", got)
	}
	if err := k.Wakelocks.Release("migration"); err != nil {
		t.Fatal(err)
	}
	if !k.Wakelocks.AnyHeld() {
		t.Error("wakelocks released too eagerly")
	}
	k.Wakelocks.Release("migration")
	k.Wakelocks.Release("audio")
	if k.Wakelocks.AnyHeld() {
		t.Error("wakelocks still held after full release")
	}
	if err := k.Wakelocks.Release("audio"); err == nil {
		t.Error("release of unheld lock succeeded")
	}
}

func TestAlarmDriverFiresOnAdvance(t *testing.T) {
	k := New("3.4")
	fired := 0
	k.Alarms.Set(k.Clock().Now().Add(10*time.Minute), func(time.Time) { fired++ })
	k.Clock().Advance(9 * time.Minute)
	if fired != 0 {
		t.Fatal("alarm fired early")
	}
	if k.Alarms.Pending() != 1 {
		t.Errorf("Pending = %d", k.Alarms.Pending())
	}
	k.Clock().Advance(2 * time.Minute)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Alarms.Pending() != 0 {
		t.Errorf("Pending after fire = %d", k.Alarms.Pending())
	}
}

func TestAlarmDriverCancel(t *testing.T) {
	k := New("3.4")
	fired := false
	id := k.Alarms.Set(k.Clock().Now().Add(time.Minute), func(time.Time) { fired = true })
	k.Alarms.Cancel(id)
	k.Clock().Advance(time.Hour)
	if fired {
		t.Error("cancelled alarm fired")
	}
	k.Alarms.Cancel(9999) // unknown id is a no-op
}

func TestProcessesSorted(t *testing.T) {
	k := New("3.1")
	for i := 0; i < 4; i++ {
		newProc(t, k, "p")
	}
	ps := k.Processes()
	for i := 1; i < len(ps); i++ {
		if ps[i].PID() <= ps[i-1].PID() {
			t.Errorf("Processes not sorted: %d then %d", ps[i-1].PID(), ps[i].PID())
		}
	}
}

func TestKernelVersion(t *testing.T) {
	if got := New("3.1").Version(); got != "3.1" {
		t.Errorf("Version = %q", got)
	}
}
