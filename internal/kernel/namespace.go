package kernel

import (
	"fmt"
	"sort"
	"sync"
)

// PIDNamespace is a private virtual pid space. Flux restores a migrated app
// inside one so the app keeps seeing the pids it had on the home device even
// if those numerical pids are taken on the guest (paper §3.1, §3.3).
type PIDNamespace struct {
	mu   sync.Mutex
	name string
	vmap map[int]int // vpid -> global pid
}

// NewPIDNamespace creates an empty namespace with a diagnostic name.
func NewPIDNamespace(name string) *PIDNamespace {
	return &PIDNamespace{name: name, vmap: make(map[int]int)}
}

// Name returns the namespace's diagnostic name.
func (ns *PIDNamespace) Name() string { return ns.name }

func (ns *PIDNamespace) bind(vpid, pid int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.vmap[vpid]; ok {
		return fmt.Errorf("kernel: vpid %d already bound in namespace %q", vpid, ns.name)
	}
	ns.vmap[vpid] = pid
	return nil
}

func (ns *PIDNamespace) unbind(vpid int) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	delete(ns.vmap, vpid)
}

// Resolve maps a virtual pid to its global pid; ok is false if unbound.
func (ns *PIDNamespace) Resolve(vpid int) (pid int, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	pid, ok = ns.vmap[vpid]
	return pid, ok
}

// VPIDs returns the bound virtual pids, sorted.
func (ns *PIDNamespace) VPIDs() []int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]int, 0, len(ns.vmap))
	for v := range ns.vmap {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
