package kernel

import (
	"sort"
	"sync"
	"time"
)

// Clock is the device's virtual time source. All timing in the simulation —
// alarm expiry, migration stage durations, checkpoint timestamps — is driven
// by virtual time so experiments are deterministic and tests never sleep.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*timer
	nextID int
}

type timer struct {
	id   int
	when time.Time
	fn   func(now time.Time)
}

// Epoch is the virtual boot instant of every simulated device.
var Epoch = time.Date(2015, time.April, 21, 9, 0, 0, 0, time.UTC)

// NewClock returns a clock set to Epoch.
func NewClock() *Clock { return &Clock{now: Epoch} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn to run when virtual time reaches now+d. It returns
// a cancel function. fn runs synchronously inside Advance.
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Time)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.atLocked(c.now.Add(d), fn)
}

// At schedules fn for an absolute virtual instant. Instants in the past fire
// on the next Advance (even Advance(0)).
func (c *Clock) At(when time.Time, fn func(now time.Time)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.atLocked(when, fn)
}

func (c *Clock) atLocked(when time.Time, fn func(now time.Time)) (cancel func()) {
	t := &timer{id: c.nextID, when: when, fn: fn}
	c.nextID++
	c.timers = append(c.timers, t)
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, have := range c.timers {
			if have.id == t.id {
				c.timers = append(c.timers[:i], c.timers[i+1:]...)
				return
			}
		}
	}
}

// Advance moves virtual time forward by d, firing due timers in time order.
// Timers scheduled by running timers also fire if they fall within the
// window, so chained alarms behave like the real alarm driver.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		idx := -1
		for i, t := range c.timers {
			if t.when.After(target) {
				continue
			}
			if idx == -1 || t.when.Before(c.timers[idx].when) ||
				(t.when.Equal(c.timers[idx].when) && t.id < c.timers[idx].id) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		t := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if t.when.After(c.now) {
			c.now = t.when
		}
		fireAt := c.now
		c.mu.Unlock()
		t.fn(fireAt)
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// PendingTimers reports how many timers are scheduled, for tests.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// NextDeadlines returns scheduled timer instants, soonest first, for tests
// and for CRIA's alarm-state inspection.
func (c *Clock) NextDeadlines() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Time, len(c.timers))
	for i, t := range c.timers {
		out[i] = t.when
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
