package kernel

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// ashmem — Android's named shared memory driver. The paper notes Dalvik was
// the main ashmem user and Flux modified it to use mmap instead; the driver
// is still modelled so CRIA can assert no app-held ashmem regions remain at
// checkpoint time (and checkpoint them if they do).

// AshmemRegion is one named shared-memory region.
type AshmemRegion struct {
	Name   string
	Size   int64
	Owner  int // creating pid
	Pinned bool
}

// AshmemDriver manages ashmem regions.
type AshmemDriver struct {
	mu      sync.Mutex
	regions map[string]*AshmemRegion
}

func newAshmemDriver() *AshmemDriver {
	return &AshmemDriver{regions: make(map[string]*AshmemRegion)}
}

// Create allocates a named region owned by pid.
func (d *AshmemDriver) Create(name string, size int64, pid int) (*AshmemRegion, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.regions[name]; ok {
		return nil, fmt.Errorf("ashmem: region %q exists", name)
	}
	r := &AshmemRegion{Name: name, Size: size, Owner: pid, Pinned: true}
	d.regions[name] = r
	return r, nil
}

// Release removes a region.
func (d *AshmemDriver) Release(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.regions[name]; !ok {
		return fmt.Errorf("ashmem: region %q not found", name)
	}
	delete(d.regions, name)
	return nil
}

// RegionsOwnedBy lists regions created by pid, sorted by name.
func (d *AshmemDriver) RegionsOwnedBy(pid int) []AshmemRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []AshmemRegion
	for _, r := range d.regions {
		if r.Owner == pid {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---------------------------------------------------------------------------
// pmem — physically contiguous allocator used by devices like the GPU.
// CRIA support is unnecessary because prep frees all graphics resources
// first; the driver exists so tests can verify the pool is drained.

// PmemDriver is a bump allocator over a fixed physically contiguous pool.
type PmemDriver struct {
	mu     sync.Mutex
	total  int64
	used   int64
	allocs map[int]pmemAlloc
	nextID int
}

type pmemAlloc struct {
	size  int64
	owner int
}

func newPmemDriver(total int64) *PmemDriver {
	return &PmemDriver{total: total, allocs: make(map[int]pmemAlloc), nextID: 1}
}

// Alloc reserves size bytes for pid, returning an allocation id.
func (d *PmemDriver) Alloc(size int64, pid int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+size > d.total {
		return 0, fmt.Errorf("pmem: out of contiguous memory (%d used of %d, want %d)", d.used, d.total, size)
	}
	id := d.nextID
	d.nextID++
	d.allocs[id] = pmemAlloc{size: size, owner: pid}
	d.used += size
	return id, nil
}

// Free releases an allocation.
func (d *PmemDriver) Free(id int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[id]
	if !ok {
		return fmt.Errorf("pmem: allocation %d not found", id)
	}
	d.used -= a.size
	delete(d.allocs, id)
	return nil
}

// FreeOwnedBy releases all allocations owned by pid, returning bytes freed.
func (d *PmemDriver) FreeOwnedBy(pid int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var freed int64
	for id, a := range d.allocs {
		if a.owner == pid {
			freed += a.size
			d.used -= a.size
			delete(d.allocs, id)
		}
	}
	return freed
}

// UsedBy reports bytes held by pid.
func (d *PmemDriver) UsedBy(pid int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, a := range d.allocs {
		if a.owner == pid {
			n += a.size
		}
	}
	return n
}

// Used reports total bytes allocated.
func (d *PmemDriver) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// ---------------------------------------------------------------------------
// Logger — Android's ring-buffer log device. Used like a regular file and
// holds no per-process state, which is why CRIA needs almost no support for
// it (paper §3.3); the model exists to prove that property in tests.

// LogEntry is one logged line.
type LogEntry struct {
	PID int
	Tag string
	Msg string
}

// LoggerDriver is a fixed-capacity ring buffer of log entries.
type LoggerDriver struct {
	mu      sync.Mutex
	cap     int
	entries []LogEntry
	dropped int64
}

func newLoggerDriver(capacity int) *LoggerDriver {
	return &LoggerDriver{cap: capacity}
}

// Write appends an entry, evicting the oldest when full.
func (d *LoggerDriver) Write(pid int, tag, msg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.entries) == d.cap {
		d.entries = d.entries[1:]
		d.dropped++
	}
	d.entries = append(d.entries, LogEntry{PID: pid, Tag: tag, Msg: msg})
}

// Tail returns up to n most recent entries.
func (d *LoggerDriver) Tail(n int) []LogEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > len(d.entries) {
		n = len(d.entries)
	}
	out := make([]LogEntry, n)
	copy(out, d.entries[len(d.entries)-n:])
	return out
}

// Dropped reports how many entries the ring has evicted.
func (d *LoggerDriver) Dropped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// ---------------------------------------------------------------------------
// Wakelocks — power management. Held only by system services in Android, so
// CRIA never checkpoints them; Selective Record/Adaptive Replay carries the
// app-visible effects instead (paper §3.3).

// WakelockDriver tracks named reference-counted wakelocks.
type WakelockDriver struct {
	mu    sync.Mutex
	locks map[string]int
}

func newWakelockDriver() *WakelockDriver {
	return &WakelockDriver{locks: make(map[string]int)}
}

// Acquire increments the named lock.
func (d *WakelockDriver) Acquire(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.locks[name]++
}

// Release decrements the named lock, removing it at zero.
func (d *WakelockDriver) Release(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.locks[name]
	if !ok {
		return fmt.Errorf("wakelock: release of unheld lock %q", name)
	}
	if n == 1 {
		delete(d.locks, name)
	} else {
		d.locks[name] = n - 1
	}
	return nil
}

// AnyHeld reports whether the device must stay awake.
func (d *WakelockDriver) AnyHeld() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.locks) > 0
}

// Held returns the names of held locks, sorted.
func (d *WakelockDriver) Held() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.locks))
	for name := range d.locks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Alarm driver — lets the AlarmManagerService schedule triggers that fire
// regardless of sleep state. Alarms fire as virtual time advances.

// AlarmDriver schedules kernel-level alarms on the virtual clock.
type AlarmDriver struct {
	clock *Clock

	mu        sync.Mutex
	nextID    int
	live      map[int]time.Time
	cancelFns map[int]func()
}

func newAlarmDriver(c *Clock) *AlarmDriver {
	return &AlarmDriver{
		clock:     c,
		live:      make(map[int]time.Time),
		cancelFns: make(map[int]func()),
	}
}

// Set schedules fn at the absolute virtual instant, returning an alarm id.
// Alarms never fire inline from Set, even for instants in the past; the
// next clock Advance delivers them, matching the real driver's interrupt
// behaviour.
func (d *AlarmDriver) Set(when time.Time, fn func(now time.Time)) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.live[id] = when
	d.cancelFns[id] = d.clock.At(when, func(now time.Time) {
		d.mu.Lock()
		delete(d.live, id)
		delete(d.cancelFns, id)
		d.mu.Unlock()
		fn(now)
	})
	return id
}

// Cancel removes a pending alarm; it is a no-op for fired or unknown ids.
func (d *AlarmDriver) Cancel(id int) {
	d.mu.Lock()
	cancel := d.cancelFns[id]
	delete(d.cancelFns, id)
	delete(d.live, id)
	d.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Pending reports the number of scheduled alarms.
func (d *AlarmDriver) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}
