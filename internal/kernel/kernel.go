// Package kernel simulates the Android flavour of the Linux kernel that Flux
// runs on: processes with fd tables and memory segments, private PID
// namespaces for restore, a virtual clock, and the Android-specific drivers
// the paper's CRIA mechanism must handle — Binder (package binder), ashmem,
// pmem, the alarm driver, wakelocks, and the Logger driver.
package kernel

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"flux/internal/binder"
)

// Kernel is one device's kernel instance.
type Kernel struct {
	mu      sync.Mutex
	version string // e.g. "3.4" — the paper migrates across 3.1 and 3.4
	clock   *Clock
	binder  *binder.Driver
	nextPID int
	procs   map[int]*Process

	Ashmem    *AshmemDriver
	Pmem      *PmemDriver
	Logger    *LoggerDriver
	Wakelocks *WakelockDriver
	Alarms    *AlarmDriver
}

// New boots a kernel with the given version string.
func New(version string) *Kernel {
	k := &Kernel{
		version: version,
		clock:   NewClock(),
		binder:  binder.NewDriver(),
		nextPID: 1,
		procs:   make(map[int]*Process),
	}
	k.Ashmem = newAshmemDriver()
	k.Pmem = newPmemDriver(256 << 20) // 256 MB contiguous pool
	k.Logger = newLoggerDriver(4096)
	k.Wakelocks = newWakelockDriver()
	k.Alarms = newAlarmDriver(k.clock)
	return k
}

// Version returns the kernel version string.
func (k *Kernel) Version() string { return k.version }

// Clock returns the device's virtual time source.
func (k *Kernel) Clock() *Clock { return k.clock }

// Binder returns the device's Binder driver.
func (k *Kernel) Binder() *binder.Driver { return k.binder }

// SegmentKind labels a memory mapping for checkpoint accounting.
type SegmentKind uint8

const (
	// SegHeap is Dalvik heap and native malloc memory: always checkpointed.
	SegHeap SegmentKind = iota
	// SegCode is file-backed executable mapping: never checkpointed (the
	// pairing phase ships the backing files instead).
	SegCode
	// SegGraphics is GPU-adjacent memory (texture caches, command buffers):
	// must be empty at checkpoint time; CRIA's prep phase frees it.
	SegGraphics
	// SegAshmem is an ashmem-backed shared mapping.
	SegAshmem
)

func (s SegmentKind) String() string {
	switch s {
	case SegHeap:
		return "heap"
	case SegCode:
		return "code"
	case SegGraphics:
		return "graphics"
	case SegAshmem:
		return "ashmem"
	}
	return fmt.Sprintf("segkind(%d)", uint8(s))
}

// MemSegment models one mapping of a process. Payload bytes are described by
// (Size, Entropy) rather than materialized: Entropy in [0,1] is the fraction
// of the segment that survives DEFLATE, which lets the migration pipeline
// compute compressed image sizes deterministically without allocating tens
// of megabytes per simulated app.
type MemSegment struct {
	Name    string
	Kind    SegmentKind
	Size    int64
	Entropy float64
	// Gen counts the segment's content generations: DirtySegments bumps
	// it when the app rewrites part of the mapping. Sizes and entropy are
	// unchanged by a rewrite; only the content identity (and therefore the
	// delta-migration chunk digests) moves. Zero means never rewritten.
	Gen uint64
	// DirtyFrac is the fraction of the segment rewritten in the Gen-1→Gen
	// step; the rolling-delta fallback ships roughly this fraction of the
	// segment's wire bytes when the peer caches the previous generation.
	DirtyFrac float64
}

// CompressedSize returns the segment's size after compression.
func (m MemSegment) CompressedSize() int64 {
	if m.Entropy < 0 {
		return 0
	}
	if m.Entropy > 1 {
		return m.Size
	}
	return int64(float64(m.Size) * m.Entropy)
}

// FDKind labels a file descriptor.
type FDKind uint8

const (
	FDFile FDKind = iota
	FDSocket
	FDUnixSocket
	FDAshmem
	FDLogger
	FDBinder
)

func (f FDKind) String() string {
	switch f {
	case FDFile:
		return "file"
	case FDSocket:
		return "socket"
	case FDUnixSocket:
		return "unix"
	case FDAshmem:
		return "ashmem"
	case FDLogger:
		return "logger"
	case FDBinder:
		return "binder"
	}
	return fmt.Sprintf("fdkind(%d)", uint8(f))
}

// FD is one entry in a process's descriptor table.
type FD struct {
	Num    int
	Kind   FDKind
	Path   string // file path, socket peer, or ashmem region name
	Offset int64
}

// Process is a simulated process: fd table, memory map, namespace identity.
type Process struct {
	kernel *Kernel
	pid    int // global pid
	vpid   int // pid as seen inside its namespace
	ns     *PIDNamespace
	name   string
	uid    int
	dead   bool

	mu       sync.Mutex
	nextFD   int
	fds      map[int]*FD
	segments []MemSegment
	binder   *binder.Proc
}

// ProcessOptions configures process creation.
type ProcessOptions struct {
	Name string
	UID  int
	// Namespace places the process in a private PID namespace with the
	// given virtual pid; nil means the root namespace (vpid == pid).
	Namespace *PIDNamespace
	VPID      int
}

// CreateProcess spawns a process and opens the Binder driver for it.
func (k *Kernel) CreateProcess(opts ProcessOptions) (*Process, error) {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	k.mu.Unlock()

	vpid := pid
	ns := opts.Namespace
	if ns != nil {
		if opts.VPID <= 0 {
			return nil, fmt.Errorf("kernel: namespace process needs explicit vpid")
		}
		vpid = opts.VPID
		if err := ns.bind(vpid, pid); err != nil {
			return nil, err
		}
	}
	bp, err := k.binder.OpenProc(pid, opts.Name)
	if err != nil {
		return nil, err
	}
	p := &Process{
		kernel: k,
		pid:    pid,
		vpid:   vpid,
		ns:     ns,
		name:   opts.Name,
		uid:    opts.UID,
		nextFD: 3, // 0,1,2 are stdio
		fds:    make(map[int]*FD),
		binder: bp,
	}
	k.mu.Lock()
	k.procs[pid] = p
	k.mu.Unlock()
	return p, nil
}

// Process looks up a live process by global pid.
func (k *Kernel) Process(pid int) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs[pid]
}

// Processes returns all live processes sorted by pid.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// PID returns the global pid.
func (p *Process) PID() int { return p.pid }

// VPID returns the pid as seen inside the process's namespace.
func (p *Process) VPID() int { return p.vpid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// UID returns the owning uid.
func (p *Process) UID() int { return p.uid }

// Namespace returns the process's PID namespace, nil for the root namespace.
func (p *Process) Namespace() *PIDNamespace { return p.ns }

// Binder returns the process's Binder driver state.
func (p *Process) Binder() *binder.Proc { return p.binder }

// Dead reports whether the process has exited.
func (p *Process) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// OpenFD installs a descriptor of the given kind and returns its number.
func (p *Process) OpenFD(kind FDKind, path string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return 0, fmt.Errorf("kernel: open on dead process %d", p.pid)
	}
	fd := &FD{Num: p.nextFD, Kind: kind, Path: path}
	p.fds[fd.Num] = fd
	p.nextFD++
	return fd.Num, nil
}

// OpenFDAt installs a descriptor at a specific number, the restore-side
// primitive CRIA uses so migrated apps keep their descriptor numbers (e.g.
// the SensorEventConnection Unix socket that is dup2'd into place).
func (p *Process) OpenFDAt(num int, kind FDKind, path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return fmt.Errorf("kernel: open on dead process %d", p.pid)
	}
	if _, ok := p.fds[num]; ok {
		return fmt.Errorf("kernel: fd %d already open in pid %d", num, p.pid)
	}
	p.fds[num] = &FD{Num: num, Kind: kind, Path: path}
	if num >= p.nextFD {
		p.nextFD = num + 1
	}
	return nil
}

// Dup2 duplicates oldfd onto newfd, closing newfd first if open — the exact
// primitive the SensorService replay proxy uses to keep socket numbers
// stable across migration.
func (p *Process) Dup2(oldfd, newfd int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	src, ok := p.fds[oldfd]
	if !ok {
		return fmt.Errorf("kernel: dup2: fd %d not open in pid %d", oldfd, p.pid)
	}
	cp := *src
	cp.Num = newfd
	p.fds[newfd] = &cp
	delete(p.fds, oldfd)
	if newfd >= p.nextFD {
		p.nextFD = newfd + 1
	}
	return nil
}

// CloseFD removes a descriptor.
func (p *Process) CloseFD(num int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fds[num]; !ok {
		return fmt.Errorf("kernel: close: fd %d not open in pid %d", num, p.pid)
	}
	delete(p.fds, num)
	return nil
}

// FDs returns a snapshot of the descriptor table sorted by number.
func (p *Process) FDs() []FD {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FD, 0, len(p.fds))
	for _, fd := range p.fds {
		out = append(out, *fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// FD returns the descriptor with the given number, or nil.
func (p *Process) FD(num int) *FD {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fd, ok := p.fds[num]; ok {
		cp := *fd
		return &cp
	}
	return nil
}

// MapSegment adds a memory mapping.
func (p *Process) MapSegment(seg MemSegment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.segments = append(p.segments, seg)
}

// UnmapSegments removes all mappings matching pred, returning bytes freed.
func (p *Process) UnmapSegments(pred func(MemSegment) bool) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var kept []MemSegment
	var freed int64
	for _, s := range p.segments {
		if pred(s) {
			freed += s.Size
		} else {
			kept = append(kept, s)
		}
	}
	p.segments = kept
	return freed
}

// Segments returns a snapshot of the memory map.
func (p *Process) Segments() []MemSegment {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemSegment, len(p.segments))
	copy(out, p.segments)
	return out
}

// MemoryBytes sums segment sizes, optionally filtered by kind.
func (p *Process) MemoryBytes(kinds ...SegmentKind) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, s := range p.segments {
		if len(kinds) == 0 {
			total += s.Size
			continue
		}
		for _, k := range kinds {
			if s.Kind == k {
				total += s.Size
				break
			}
		}
	}
	return total
}

// DirtySegments models foreground app activity between migration hops:
// the app touches roughly frac of the process's checkpointable bytes
// (heap + ashmem), rewriting rewrite of the touched region. Segments are
// picked in a seed-deterministic order until their sizes cover frac of
// the checkpointable total; a segment only partially inside the target
// (the common case — the Dalvik heap is one large mapping) takes a
// proportionally smaller DirtyFrac, so the rewritten byte total tracks
// frac×rewrite regardless of segment granularity. Every touched segment
// advances one content generation (both fractions clamp to [0,1]).
// Returns the bytes rewritten. The delta-migration commuter scenario
// drives this between hops, so the dirty set — and therefore every chunk
// digest — is a pure function of (memory map, frac, rewrite, seed).
func (p *Process) DirtySegments(frac, rewrite float64, seed int64) int64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if rewrite < 0 {
		rewrite = 0
	}
	if rewrite > 1 {
		rewrite = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var idx []int
	var total int64
	for i, s := range p.segments {
		if (s.Kind == SegHeap || s.Kind == SegAshmem) && s.Size > 0 {
			idx = append(idx, i)
			total += s.Size
		}
	}
	if total == 0 || frac == 0 || rewrite == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	target := int64(float64(total) * frac)
	var covered, dirtied int64
	for _, i := range idx {
		if covered >= target {
			break
		}
		seg := &p.segments[i]
		span := seg.Size
		if remaining := target - covered; remaining < span {
			span = remaining
		}
		seg.Gen++
		seg.DirtyFrac = float64(span) / float64(seg.Size) * rewrite
		covered += span
		dirtied += int64(float64(span) * rewrite)
	}
	return dirtied
}

// Exit terminates the process: Binder state tears down (firing death
// recipients), descriptors close, and the pid leaves its namespace.
func (p *Process) Exit() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.fds = make(map[int]*FD)
	p.segments = nil
	p.mu.Unlock()

	p.binder.Exit()
	if p.ns != nil {
		p.ns.unbind(p.vpid)
	}
	k := p.kernel
	k.mu.Lock()
	delete(k.procs, p.pid)
	k.mu.Unlock()
}
