// Quickstart: migrate an unmodified app from a phone to a tablet with the
// flux public API — pair once, launch, swipe (Migrate), and verify the app
// picked up exactly where it left off with its UI re-laid-out for the
// tablet's screen.
package main

import (
	"fmt"
	"log"

	"flux"
)

func main() {
	// Two devices running Flux. Profiles model the paper's evaluation
	// hardware, including GPU, kernel version, screen, and radio.
	phone, err := flux.NewDevice(flux.Nexus4("my-phone"))
	if err != nil {
		log.Fatal(err)
	}
	tablet, err := flux.NewDevice(flux.Nexus7v2013("my-tablet"))
	if err != nil {
		log.Fatal(err)
	}

	// Pick an app from the paper's Table 3 catalog and install it on the
	// phone — its *home* device.
	app := flux.AppByPackage("com.bible.reader")
	if err := flux.Install(phone, *app); err != nil {
		log.Fatal(err)
	}

	// One-time pairing: core frameworks sync to the tablet with rsync
	// --link-dest semantics, and the app is pseudo-installed there.
	pres, err := flux.PairDevices(phone, tablet, []string{app.Spec.Package})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paired: %.0f MB of frameworks, only %.0f MB crossed the air\n",
		float64(pres.ConstantBytes)/(1<<20), float64(pres.TotalWireBytes())/(1<<20))

	// Launch the app and run its workload (reading John 3, setting a
	// verse-of-the-day alarm, copying a verse to the clipboard).
	session, err := flux.LaunchApp(phone, *app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reading on the phone: chapter %s, screen %s\n",
		session.App.SavedState()["chapter"], phone.Runtime.Screen())

	// The swipe: migrate to the tablet.
	report, err := flux.Migrate(phone, tablet, app.Spec.Package, flux.MigrateOptions{})
	if err != nil {
		log.Fatal(err)
	}

	restored := report.App
	fmt.Printf("migrated in %v (%.1f MB over WiFi)\n",
		report.Timings.Total().Round(1e6), float64(report.TransferredBytes)/(1<<20))
	fmt.Printf("still on chapter %s, now drawn for %s\n",
		restored.SavedState()["chapter"],
		restored.MainActivity().Window().ViewRoot().DrawnFor())
	if report.StateConsistent() {
		fmt.Println("notifications, alarms, and clipboard followed the app ✓")
	}
}
