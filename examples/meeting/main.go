// Meeting: the paper's collaboration scenario (§1, use case 4). A document
// app hops around the table — phone to one tablet to another — each person
// adding a note. Every hop crosses heterogeneous hardware (different SoCs,
// GPUs, kernels, screens) and the accumulated state rides along in the CRIA
// image and the replayed service calls.
package main

import (
	"fmt"
	"log"
	"strings"

	"flux"
)

func main() {
	alice, err := flux.NewDevice(flux.Nexus4("alice-phone"))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := flux.NewDevice(flux.Nexus7v2012("bob-tablet"))
	if err != nil {
		log.Fatal(err)
	}
	carol, err := flux.NewDevice(flux.Nexus7v2013("carol-tablet"))
	if err != nil {
		log.Fatal(err)
	}

	app := flux.AppByPackage("com.pinterest") // stands in for a shared board app
	if err := flux.Install(alice, *app); err != nil {
		log.Fatal(err)
	}
	// Pair every pair of devices that will hand the app around.
	for _, pair := range [][2]*flux.Device{{alice, bob}, {bob, carol}, {carol, alice}} {
		if _, err := flux.PairDevices(pair[0], pair[1], []string{app.Spec.Package}); err != nil {
			log.Fatal(err)
		}
	}

	session, err := flux.LaunchApp(alice, *app)
	if err != nil {
		log.Fatal(err)
	}
	session.Save("notes", "alice: agenda item 1")

	hops := []struct {
		from, to *flux.Device
		note     string
	}{
		{alice, bob, "bob: numbers look right"},
		{bob, carol, "carol: ship it"},
		{carol, alice, "alice: action items recorded"},
	}
	for _, hop := range hops {
		rep, err := flux.Migrate(hop.from, hop.to, app.Spec.Package, flux.MigrateOptions{})
		if err != nil {
			log.Fatalf("%s → %s: %v", hop.from.Name(), hop.to.Name(), err)
		}
		if !rep.StateConsistent() {
			log.Fatalf("%s → %s: state diverged", hop.from.Name(), hop.to.Name())
		}
		notes := rep.App.SavedState()["notes"] + "\n" + hop.note
		rep.App.PutSavedState("notes", notes)
		fmt.Printf("%s → %s in %v (UI %s)\n",
			hop.from.Name(), hop.to.Name(),
			rep.Timings.UserPerceived().Round(1e6),
			rep.App.MainActivity().Window().ViewRoot().DrawnFor())
	}

	final := alice.Runtime.App(app.Spec.Package)
	fmt.Println("\nshared notes after the full round:")
	for _, line := range strings.Split(final.SavedState()["notes"], "\n") {
		fmt.Println("  •", line)
	}
}
