// Movie night: the paper's motivating Netflix scenario. Start browsing on
// the phone, hand the session to the big tablet for the couch, and when the
// tablet's battery runs low, hand it back — state (playback position,
// volume, wakelock) follows the app both ways, adapted to each device:
// volume indexes rescale between the phone's 15-step and the tablet's
// 30-step ranges, and the UI re-lays out for each screen.
package main

import (
	"fmt"
	"log"

	"flux"
	"flux/internal/services"
)

func main() {
	phone, err := flux.NewDevice(flux.Nexus4("pocket-phone"))
	if err != nil {
		log.Fatal(err)
	}
	tablet, err := flux.NewDevice(flux.Nexus7v2013("couch-tablet"))
	if err != nil {
		log.Fatal(err)
	}

	netflix := flux.AppByPackage("com.netflix.mediaclient")
	if err := flux.Install(phone, *netflix); err != nil {
		log.Fatal(err)
	}
	if _, err := flux.PairDevices(phone, tablet, []string{netflix.Spec.Package}); err != nil {
		log.Fatal(err)
	}

	session, err := flux.LaunchApp(phone, *netflix)
	if err != nil {
		log.Fatal(err)
	}
	// Start the movie on the phone: position saved, volume 11/15, playback
	// wakelock held.
	session.Save("movie", "the-grand-simulation")
	session.Save("position", "00:42:07")
	fmt.Printf("watching on %s (volume %d/%d)\n", phone.Name(),
		phone.System.Audio.StreamVolume(services.StreamMusic), phone.System.Audio.MaxSteps())

	// Hand off to the big screen.
	toCouch, err := flux.Migrate(phone, tablet, netflix.Spec.Package, flux.MigrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ couch in %v; resumed at %s on a %s screen, volume %d/%d\n",
		toCouch.Timings.UserPerceived().Round(1e6),
		toCouch.App.SavedState()["position"],
		tablet.Runtime.Screen(),
		tablet.System.Audio.StreamVolume(services.StreamMusic), tablet.System.Audio.MaxSteps())
	if !tablet.Kernel.Wakelocks.AnyHeld() {
		log.Fatal("playback wakelock lost in migration")
	}

	// Battery low on the tablet — hand it back.
	toCouch.App.PutSavedState("position", "01:58:33") // nearly done
	back, err := flux.Migrate(tablet, phone, netflix.Spec.Package, flux.MigrateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("← phone in %v; finishing at %s, volume back to %d/%d\n",
		back.Timings.UserPerceived().Round(1e6),
		back.App.SavedState()["position"],
		phone.System.Audio.StreamVolume(services.StreamMusic), phone.System.Audio.MaxSteps())
	if back.StateConsistent() {
		fmt.Println("round trip kept every service's state consistent ✓")
	}
}
