// Playstore: the paper's Google Play analysis (§4, Figure 17). Synthesizes
// the 488,259-app crawl, reports the install-size distribution that bounds
// pairing costs, and counts the apps Flux cannot migrate because they
// preserve their EGL context across pauses.
package main

import (
	"fmt"
	"strings"

	"flux"
	"flux/internal/playstore"
)

func main() {
	cat := flux.PlayStoreCatalog(playstore.PaperCatalogSize)
	fmt.Printf("catalog: %d free apps (paper: %d)\n\n", cat.Len(), playstore.PaperCatalogSize)

	fmt.Println("installation-size CDF (Figure 17):")
	for _, pt := range cat.CDF(playstore.Figure17Thresholds()) {
		bar := strings.Repeat("#", int(pt.Frac*40))
		fmt.Printf("  ≤ %9d KB  %5.1f%%  %s\n", pt.SizeKB, pt.Frac*100, bar)
	}

	fmt.Printf("\nroughly %.0f%% of apps are under 1 MB; %.0f%% under 10 MB (paper: 60%% and 90%%)\n",
		cat.FractionBelow(1<<10)*100, cat.FractionBelow(10<<10)*100)

	preserve := cat.PreserveEGLCount()
	fmt.Printf("\nsetPreserveEGLContextOnPause callers: %d (paper: %d)\n", preserve, playstore.PaperPreserveEGLCount)
	fmt.Printf("Flux can migrate %.2f%% of the catalog\n", cat.MigratableFraction()*100)
}
