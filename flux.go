// Package flux is the public API of the Flux reproduction: multi-surface
// computing in Android through app migration (Van't Hof, Jamjoom, Nieh,
// Williams — EuroSys 2015).
//
// Flux makes any unmodified app multi-surface by migrating it live between
// heterogeneous devices, with no cloud backing. Two mechanisms carry it:
// Selective Record / Adaptive Replay (record only the Binder service calls
// that still matter, replay them — adapted — against the guest device's own
// services) and CRIA (Checkpoint/Restore In Android: checkpoint an app
// whose device-specific state was first discarded through Android's own
// background/trim-memory/eglUnload machinery, restore it in a private PID
// namespace with Binder handles re-bound by name).
//
// The Android substrate underneath (Binder driver, kernel drivers, the 22
// decorated system services of the paper's Table 2, the framework runtime,
// the GPU stack, devices and wireless links) is a faithful functional
// simulation implemented in the internal packages; see DESIGN.md for the
// substitution map.
//
// Typical use:
//
//	home, _ := flux.NewDevice(flux.Nexus4("my-phone"))
//	guest, _ := flux.NewDevice(flux.Nexus7v2013("my-tablet"))
//	app := flux.AppByPackage("com.netflix.mediaclient")
//	flux.Install(home, *app)
//	flux.PairDevices(home, guest, []string{app.Spec.Package})
//	flux.LaunchApp(home, *app)
//	report, _ := flux.Migrate(home, guest, app.Spec.Package, flux.MigrateOptions{})
//	fmt.Println(report.Timings.Total())
package flux

import (
	"io"

	"flux/internal/android"
	"flux/internal/apps"
	"flux/internal/chunkstore"
	"flux/internal/device"
	"flux/internal/experiments"
	"flux/internal/faults"
	"flux/internal/fleet"
	"flux/internal/migration"
	"flux/internal/pairing"
	"flux/internal/playstore"
)

// Device is one simulated Android device running Flux: kernel, Binder
// driver, framework runtime, decorated system services, and the Selective
// Record recorder.
type Device = device.Device

// DeviceProfile describes a device model's hardware and software.
type DeviceProfile = device.Profile

// App couples a Table 3 evaluation app with its workload driver.
type App = apps.App

// AppSpec declares an app's identity and resource profile.
type AppSpec = android.AppSpec

// Session is a running app with service-client helpers.
type Session = apps.Session

// MigrateOptions tunes a migration.
type MigrateOptions = migration.Options

// MigrationReport is the full outcome of one migration: per-stage timings,
// transfer accounting, replay statistics, and the before/after service
// state used to verify correctness.
type MigrationReport = migration.Report

// PairingResult quantifies a pairing run.
type PairingResult = pairing.Result

// Refusal errors a migration can return, mirroring the paper's cases.
var (
	ErrNotPaired       = migration.ErrNotPaired
	ErrNotRunning      = migration.ErrNotRunning
	ErrPreserveEGL     = migration.ErrPreserveEGL
	ErrMultiProcess    = migration.ErrMultiProcess
	ErrProviderBusy    = migration.ErrProviderBusy
	ErrNonSystemBinder = migration.ErrNonSystemBinder
	ErrAPILevel        = migration.ErrAPILevel
	ErrMigratedAway    = migration.ErrMigratedAway
	ErrCommonSDCard    = migration.ErrCommonSDCard
)

// ConflictPolicy selects how a migrated-away app's state conflict is
// resolved (paper §3.4).
type ConflictPolicy = migration.ConflictPolicy

// Conflict resolution policies.
const (
	ResolveKeepRemote = migration.ResolveKeepRemote
	ResolveKeepLocal  = migration.ResolveKeepLocal
)

// Fault injection (DESIGN.md §5e): a deterministic, seedable injector
// fires wire and stage faults so migrations exercise their recovery
// paths — resumable checksummed chunk retransmission under capped
// exponential backoff, and rollback-to-home when retries exhaust.
type (
	// FaultInjector decides, deterministically from its seed, whether
	// each potential fault fires. Set it on MigrateOptions.Faults; a nil
	// injector (the default) disables every recovery code path.
	FaultInjector = faults.Injector
	// FaultPlan maps fault sites to their firing rules.
	FaultPlan = faults.Plan
	// FaultRule is one site's probability and optional firing cap.
	FaultRule = faults.Rule
	// FaultSite names a place a fault can fire.
	FaultSite = faults.Site
)

// The fault sites an injector can fire.
const (
	FaultLinkFlap     = faults.LinkFlap
	FaultChunkCorrupt = faults.ChunkCorrupt
	FaultChunkLoss    = faults.ChunkLoss
	FaultRestoreFail  = faults.RestoreFail
	FaultReplayFail   = faults.ReplayFail
)

// NewFaultInjector builds a deterministic injector from a seed and plan.
func NewFaultInjector(seed int64, plan FaultPlan) *FaultInjector {
	return faults.New(seed, plan)
}

// ErrRolledBack reports a migration whose fault recovery exhausted its
// retries: the guest's partial state was discarded and the home device
// foregrounded the intact app. No state is lost.
var ErrRolledBack = migration.ErrRolledBack

// Delta migration (DESIGN.md §5g): each device of a pair keeps a
// content-addressed chunk store; a migration with MigrateOptions.Cache
// set opens with a digest negotiation and ships only the chunks the
// receiver does not already hold, falling back to a rolling delta for
// chunks that merely shifted.
type (
	// ChunkStore is a per-pair, per-device content-addressed cache of
	// migration chunks keyed by SHA-256, with LRU eviction under a byte
	// budget. Set one on MigrateOptions.Cache (receiver) and
	// MigrateOptions.SourceCache (sender); a nil store — the default —
	// disables delta migration entirely.
	ChunkStore = chunkstore.Store
	// ChunkStoreStats counts a store's hits, misses, evictions, and the
	// wire bytes its hits kept off the air.
	ChunkStoreStats = chunkstore.Stats
	// CommuterSpec configures the commuter scenario: K round trips per
	// device pair with a deterministic dirty step between hops.
	CommuterSpec = experiments.CommuterSpec
	// CommuterRun is one device pair's commuter itinerary with per-hop
	// reports.
	CommuterRun = experiments.CommuterRun
)

// NewChunkStore builds a chunk store with the given LRU byte budget;
// budget <= 0 leaves the store unbounded.
func NewChunkStore(budget int64) *ChunkStore { return chunkstore.New(budget) }

// DefaultCommuterSpec is the headline commuter configuration: 8 round
// trips, 10% dirty rate between hops, unbounded stores.
func DefaultCommuterSpec() CommuterSpec { return experiments.DefaultCommuterSpec() }

// RunCommuter drives the commuter scenario across the four evaluation
// device pairs on a workers-wide pool, writes the per-pair table to w,
// and returns the aggregate metrics (hop-1 vs steady-state wire bytes,
// cache hit ratio, bytes kept off the wire).
func RunCommuter(w io.Writer, workers int, spec CommuterSpec) (map[string]float64, error) {
	return experiments.Commuter(w, workers, spec)
}

// RetryPolicy bounds fault recovery (MigrateOptions.Retry); its zero
// value selects the defaults.
type RetryPolicy = migration.RetryPolicy

// Nexus4 is the evaluation's phone profile (Snapdragon S4 Pro, Adreno 320,
// 768x1280, kernel 3.4, 5 GHz 802.11n).
func Nexus4(name string) DeviceProfile { return device.Nexus4(name) }

// Nexus7v2012 is the 2012 tablet (Tegra 3, ULP GeForce, 1280x800, kernel
// 3.1, congested 2.4 GHz radio).
func Nexus7v2012(name string) DeviceProfile { return device.Nexus7_2012(name) }

// Nexus7v2013 is the 2013 tablet (Snapdragon S4 Pro, Adreno 320, 1920x1200,
// kernel 3.4).
func Nexus7v2013(name string) DeviceProfile { return device.Nexus7_2013(name) }

// NewDevice boots a device from a profile.
func NewDevice(p DeviceProfile) (*Device, error) { return device.New(p) }

// EvaluationApps returns the paper's Table 3 catalog: the eighteen top free
// Google Play apps with their workloads.
func EvaluationApps() []App { return apps.Catalog() }

// MigratableApps returns the sixteen Table 3 apps the paper migrates
// successfully.
func MigratableApps() []App { return apps.Migratable() }

// AppByPackage finds a Table 3 app, or returns nil.
func AppByPackage(pkg string) *App { return apps.ByPackage(pkg) }

// Install records an app on a device with a synthesized APK and data tree.
func Install(d *Device, a App) error { return apps.Install(d, a) }

// LaunchApp starts an installed app and runs its workload, returning the
// live session.
func LaunchApp(d *Device, a App) (*Session, error) { return apps.Launch(d, a) }

// PairDevices performs Flux's one-time pairing: frameworks sync with
// hard-link reuse, APK/data sync, pseudo-install of each app's wrapper.
func PairDevices(home, guest *Device, pkgs []string) (PairingResult, error) {
	return pairing.Pair(home, guest, pkgs)
}

// Migrate moves a running app from home to guest: preparation, CRIA
// checkpoint, transfer, restore, and reintegration with adaptive replay.
func Migrate(home, guest *Device, pkg string, opts MigrateOptions) (*MigrationReport, error) {
	return migration.New(home, guest, opts).Migrate(pkg)
}

// StartNative launches the natively installed app on dev, refusing with
// ErrMigratedAway while the app's live state sits on another device.
func StartNative(d *Device, spec AppSpec) (*android.App, error) {
	return migration.StartNative(d, spec)
}

// ResolveConflict settles a migrated-away app between its home device and
// the remote currently holding it: migrate it back (ResolveKeepRemote) or
// discard the remote state (ResolveKeepLocal).
func ResolveConflict(home, remote *Device, pkg string, policy ConflictPolicy) error {
	return migration.ResolveConflict(home, remote, pkg, policy)
}

// PlayStoreCatalog synthesizes the paper's 488,259-app Google Play crawl at
// the given size (use playstore.PaperCatalogSize for the full figure).
func PlayStoreCatalog(n int) *playstore.Catalog { return playstore.Generate(n) }

// RunEvaluation regenerates every table and figure of the paper's §4 into
// w: Tables 2–3, Figures 12–17, the pairing-cost experiment, the two
// expected failures, the headline summary, and four design ablations.
// benchIters controls the wall-clock overhead measurement (Figure 16);
// playN the catalog size for Figure 17.
func RunEvaluation(w io.Writer, benchIters, playN int) error {
	return experiments.RenderAll(w, benchIters, playN)
}

// EvaluationResults is the machine-readable counterpart of the text
// evaluation: per-section wall-clock cost plus the paper-comparable
// virtual-time metrics.
type EvaluationResults = experiments.Results

// RunEvaluationResults is RunEvaluation with a worker count for the
// migration matrix and machine-readable per-section results, which
// cmd/fluxbench serializes into BENCH_results.json. workers < 1 selects
// a host-sized pool.
func RunEvaluationResults(w io.Writer, benchIters, playN, workers int) (*EvaluationResults, error) {
	return experiments.RenderAllResults(w, benchIters, playN, workers)
}

// FleetSpec is the declarative workload of one fleet-scale simulation:
// users × devices behind shared APs, SLO classes with Poisson/Gamma
// arrival mixes, placement and per-AP admission policies.
type FleetSpec = fleet.Spec

// FleetReport is the deterministic product of one fleet run: per-class
// p50/p99 user-perceived latency and admission wait, SLO attainment,
// and the Jain fairness index. Same spec + seed ⇒ byte-identical
// report at any worker width.
type FleetReport = fleet.Report

// FleetResult pairs the report with per-migration records.
type FleetResult = fleet.Result

// LoadFleetSpec reads a fleet spec (YAML subset or JSON) from disk.
func LoadFleetSpec(path string) (FleetSpec, error) { return fleet.LoadSpec(path) }

// RunFleet drives the discrete-event fleet engine over a spec: every
// migration replays a stage graph measured by the real Migrate path,
// scheduled on shared device-CPU and AP-band resources under the
// spec's placement and admission policies.
func RunFleet(spec FleetSpec, workers int) (*FleetResult, error) {
	return fleet.Run(spec, fleet.Options{Workers: workers})
}
