// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end to end; custom
// metrics report the paper-comparable quantities (virtual seconds,
// megabytes, normalized scores) alongside the usual ns/op of regenerating
// the artifact. Run with:
//
//	go test -bench=. -benchmem
package flux_test

import (
	"io"
	"testing"

	"flux"
	"flux/internal/apps"
	"flux/internal/device"
	"flux/internal/experiments"
	"flux/internal/migration"
	"flux/internal/pairing"
	"flux/internal/playstore"
)

// BenchmarkTable2 regenerates the decorated-services table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the app/workload table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard)
	}
}

// runMatrix executes the 64-migration evaluation matrix once, on the
// default host-sized worker pool.
func runMatrix(b *testing.B) []experiments.Cell {
	b.Helper()
	cells, err := experiments.RunMatrix()
	if err != nil {
		b.Fatal(err)
	}
	return cells
}

// benchmarkMatrixWorkers measures matrix wall-clock at a fixed pool size;
// comparing the Workers1/Workers2/Workers4 variants shows how the
// evaluation driver scales with cores (near-linear up to the device-pair
// simulation cost; the figures themselves are byte-identical at every
// width, see TestMatrixDeterministicAcrossWorkerCounts).
func benchmarkMatrixWorkers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunMatrixWorkers(workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 64 {
			b.Fatalf("matrix has %d cells", len(cells))
		}
	}
}

// BenchmarkMatrixWorkers1 is the sequential baseline for the matrix driver.
func BenchmarkMatrixWorkers1(b *testing.B) { benchmarkMatrixWorkers(b, 1) }

// BenchmarkMatrixWorkers2 runs the matrix on two workers.
func BenchmarkMatrixWorkers2(b *testing.B) { benchmarkMatrixWorkers(b, 2) }

// BenchmarkMatrixWorkers4 runs the matrix on four workers.
func BenchmarkMatrixWorkers4(b *testing.B) { benchmarkMatrixWorkers(b, 4) }

// BenchmarkFig12 regenerates overall migration times (16 apps × 4 pairs)
// and reports the average virtual migration time (paper: 7.88 s).
func BenchmarkFig12(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		cells := runMatrix(b)
		experiments.Figure12(io.Discard, cells)
		var total float64
		for _, c := range cells {
			total += c.Report.Timings.Total().Seconds()
		}
		avg = total / float64(len(cells))
	}
	b.ReportMetric(avg, "virt-s/migration")
}

// BenchmarkFig13 regenerates the stage breakdown and reports the average
// transfer share (paper: >50%).
func BenchmarkFig13(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		cells := runMatrix(b)
		experiments.Figure13(io.Discard, cells)
		var f float64
		for _, c := range cells {
			f += float64(c.Report.Timings[migration.StageTransfer]) / float64(c.Report.Timings.Total())
		}
		share = 100 * f / float64(len(cells))
	}
	b.ReportMetric(share, "transfer-%")
}

// BenchmarkFig14 regenerates user-perceived time excluding transfer
// (paper: 1.35 s average).
func BenchmarkFig14(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		cells := runMatrix(b)
		experiments.Figure14(io.Discard, cells)
		var total float64
		for _, c := range cells {
			total += c.Report.Timings.ExcludingTransfer().Seconds()
		}
		avg = total / float64(len(cells))
	}
	b.ReportMetric(avg, "virt-s/restore+reint")
}

// BenchmarkFig15 regenerates data transferred per migration and reports the
// maximum (paper: no migration above 14 MB).
func BenchmarkFig15(b *testing.B) {
	var maxMB float64
	for i := 0; i < b.N; i++ {
		cells := runMatrix(b)
		experiments.Figure15(io.Discard, cells)
		for _, c := range cells {
			if mb := float64(c.Report.TransferredBytes) / (1 << 20); mb > maxMB {
				maxMB = mb
			}
		}
	}
	b.ReportMetric(maxMB, "max-MB/migration")
}

// BenchmarkFig16 measures Selective Record overhead (paper: negligible,
// normalized scores ≈ 1.0). Reports the worst normalized score across the
// six benchmarks on the Nexus 4.
func BenchmarkFig16(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		for _, mb := range apps.Microbenches() {
			res, err := apps.MeasureOverhead(device.Nexus4("bench"), mb, 1500)
			if err != nil {
				b.Fatal(err)
			}
			if res.Normalized < worst {
				worst = res.Normalized
			}
		}
	}
	b.ReportMetric(worst, "worst-normalized")
}

// BenchmarkFig17 regenerates the Play-store install-size CDF over the full
// 488,259-app catalog and reports the fraction under 1 MB (paper: ~0.60).
func BenchmarkFig17(b *testing.B) {
	var under1MB float64
	for i := 0; i < b.N; i++ {
		cat := playstore.Generate(playstore.PaperCatalogSize)
		experiments.Figure17(io.Discard, 20000)
		under1MB = cat.FractionBelow(1 << 10)
	}
	b.ReportMetric(under1MB, "frac<=1MB")
}

// BenchmarkPairing runs the §4 pairing-cost experiment (paper: 215 MB
// constant → 123 MB after linking → 56 MB compressed).
func BenchmarkPairing(b *testing.B) {
	var compMB float64
	for i := 0; i < b.N; i++ {
		home, err := device.New(device.Nexus7_2012("h"))
		if err != nil {
			b.Fatal(err)
		}
		guest, err := device.New(device.Nexus7_2013("g"))
		if err != nil {
			b.Fatal(err)
		}
		res, err := pairing.Pair(home, guest, nil)
		if err != nil {
			b.Fatal(err)
		}
		compMB = float64(res.CompressedBytes) / (1 << 20)
	}
	b.ReportMetric(compMB, "compressed-MB")
}

// BenchmarkMigrationSingle measures the real cost of one full migration
// (Netflix, phone → tablet), the library's core operation.
func BenchmarkMigrationSingle(b *testing.B) {
	app := apps.ByPackage("com.netflix.mediaclient")
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunOne(experiments.Figure12Pairs()[1], *app)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.StateConsistent() {
			b.Fatal("inconsistent state")
		}
	}
}

// BenchmarkRecordInterposition measures the per-call overhead Selective
// Record adds to a Binder transaction — the micro quantity behind Fig 16.
func BenchmarkRecordInterposition(b *testing.B) {
	dev, err := flux.NewDevice(flux.Nexus4("bench"))
	if err != nil {
		b.Fatal(err)
	}
	app := apps.ByPackage("com.whatsapp")
	s, err := apps.Launch(dev, *app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Notify(i%100, "n:bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAblationSelectiveVsFull compares record-log growth between
// selective and full recording.
func BenchmarkAblationSelectiveVsFull(b *testing.B) {
	app := apps.ByPackage("com.king.candycrushsaga")
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationSelectiveVsFull(io.Discard, *app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrep measures the device-specific bytes the preparation
// phase discards before checkpointing.
func BenchmarkAblationPrep(b *testing.B) {
	app := apps.ByPackage("com.king.candycrushsaga")
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationPrep(io.Discard, *app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLinkDest compares pairing with and without hard-link
// reuse.
func BenchmarkAblationLinkDest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationLinkDest(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPostCopy compares stop-and-copy against post-copy
// transfer (paper future work).
func BenchmarkAblationPostCopy(b *testing.B) {
	app := apps.ByPackage("com.king.candycrushsaga")
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationPostCopy(io.Discard, *app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompression compares checkpoint transfer with and
// without compression.
func BenchmarkAblationCompression(b *testing.B) {
	app := apps.ByPackage("com.netflix.mediaclient")
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationCompression(io.Discard, *app); err != nil {
			b.Fatal(err)
		}
	}
}
