// Command fluxstat runs one migration with telemetry enabled and prints a
// flamegraph-style text breakdown of the live span tree — the paper's
// Figure 13 stage decomposition, reproduced from spans rather than from
// the Report's Timings array — then cross-checks the two against each
// other: every stage span's virtual duration must agree with its Timings
// entry within 1% (by construction they agree exactly; fluxstat fails
// loudly if the instrumentation ever drifts).
//
// Usage:
//
//	fluxstat -app com.king.candycrushsaga -from nexus4 -to nexus7-2013
//	fluxstat -app com.whatsapp -trace whatsapp.json
//	fluxstat -app com.whatsapp -pipeline
//	fluxstat -app com.whatsapp -cache
//
// -pipeline runs the migration as a streamed pipeline
// (migration.Options.Pipelined) and renders the per-chunk
// checkpoint/compress/transfer/restore lanes as a text gantt, built from
// the "pipeline.chunk" instant spans the migration emits.
//
// -cache enables delta migration (migration.Options.Cache) and runs a
// round trip — home → guest, then back — printing a per-hop cache
// column: digest hits, misses, rolling-delta hits, and the wire bytes
// the cache kept off the air. The flamegraph and stage cross-check
// cover the first hop.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"flux"
	"flux/internal/device"
	"flux/internal/migration"
	"flux/internal/obs"
)

func main() {
	var (
		appPkg    = flag.String("app", "com.king.candycrushsaga", "package to migrate")
		from      = flag.String("from", "nexus4", "home device model")
		to        = flag.String("to", "nexus7-2013", "guest device model")
		tracePath = flag.String("trace", "", "also write the span tree as Chrome trace-event JSON")
		pipelined = flag.Bool("pipeline", false, "stream the migration and render per-chunk pipeline lanes")
		cache     = flag.Bool("cache", false, "enable delta migration and print the per-hop cache column over a round trip")
	)
	flag.Parse()
	obs.SetEnabled(true)
	if err := run(*appPkg, *from, *to, *tracePath, *pipelined, *cache); err != nil {
		fmt.Fprintln(os.Stderr, "fluxstat:", err)
		os.Exit(1)
	}
}

func profileByName(name, instance string) (device.Profile, error) {
	switch name {
	case "nexus4":
		return device.Nexus4(instance), nil
	case "nexus7", "nexus7-2012":
		return device.Nexus7_2012(instance), nil
	case "nexus7-2013":
		return device.Nexus7_2013(instance), nil
	}
	return device.Profile{}, fmt.Errorf("unknown device %q (nexus4, nexus7-2012, nexus7-2013)", name)
}

func run(appPkg, from, to, tracePath string, pipelined, cache bool) error {
	homeProfile, err := profileByName(from, "home-"+from)
	if err != nil {
		return err
	}
	guestProfile, err := profileByName(to, "guest-"+to)
	if err != nil {
		return err
	}
	app := flux.AppByPackage(appPkg)
	if app == nil {
		return fmt.Errorf("app %s is not in the evaluation catalog", appPkg)
	}
	home, err := flux.NewDevice(homeProfile)
	if err != nil {
		return err
	}
	guest, err := flux.NewDevice(guestProfile)
	if err != nil {
		return err
	}
	if err := flux.Install(home, *app); err != nil {
		return err
	}
	if _, err := flux.PairDevices(home, guest, []string{appPkg}); err != nil {
		return err
	}
	if _, err := flux.LaunchApp(home, *app); err != nil {
		return err
	}
	opts := flux.MigrateOptions{Pipelined: pipelined}
	var homeStore, guestStore *flux.ChunkStore
	if cache {
		homeStore, guestStore = flux.NewChunkStore(0), flux.NewChunkStore(0)
		opts.Cache, opts.SourceCache = guestStore, homeStore
	}
	rep, err := flux.Migrate(home, guest, appPkg, opts)
	if err != nil {
		return err
	}

	spans := obs.SortTree(obs.T().Snapshot())
	fmt.Printf("%s: %s → %s\n\n", app.Spec.Label, home.Name(), guest.Name())
	printFlame(spans)
	fmt.Println()
	if pipelined {
		printChunkLanes(spans)
		fmt.Printf("pipeline: %d chunks, saved %v vs sequential\n\n",
			rep.PipelineChunks, rep.PipelineSavings.Round(time.Millisecond))
	}
	if err := printStageCheck(spans, rep); err != nil {
		return err
	}
	if cache {
		// The return hop hits the stores the first hop populated.
		back, err := flux.Migrate(guest, home, appPkg, flux.MigrateOptions{
			Pipelined: pipelined, Cache: homeStore, SourceCache: guestStore,
		})
		if err != nil {
			return err
		}
		fmt.Println()
		printCacheColumn([]hopCache{
			{"hop 1 (fwd)", rep},
			{"hop 2 (back)", back},
		})
	}
	if tracePath != "" {
		if err := obs.T().WriteChromeTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", tracePath)
	}
	return nil
}

// printFlame renders the span forest as an indented tree with virtual
// durations and a proportional bar, flamegraph-style.
func printFlame(spans []obs.SpanData) {
	depth := obs.Depth(spans)
	// Scale bars against the migrate root (or the longest root).
	var total time.Duration
	for _, s := range spans {
		if s.Name == migration.SpanMigrate || (s.Parent == 0 && s.Virt() > total) {
			if s.Virt() > total {
				total = s.Virt()
			}
		}
	}
	if total <= 0 {
		total = time.Nanosecond
	}
	const barWidth = 32
	fmt.Printf("%-44s %12s  %s\n", "SPAN", "VIRTUAL", "SHARE")
	for _, s := range spans {
		if s.Name == migration.SpanPipelineChunk || s.Name == migration.SpanCacheLookup {
			// Dozens of instant per-chunk spans per run; chunk lanes get
			// their own gantt rendering and cache lookups their own table
			// instead of flamegraph rows.
			continue
		}
		ind := strings.Repeat("  ", depth[s.ID])
		frac := float64(s.Virt()) / float64(total)
		if frac < 0 {
			frac = 0
		}
		n := int(frac*barWidth + 0.5)
		if n > barWidth {
			n = barWidth
		}
		bar := strings.Repeat("█", n)
		if n == 0 && s.Virt() > 0 {
			bar = "▏"
		}
		fmt.Printf("%-44s %12s  %-*s %5.1f%%\n",
			ind+s.Name, fmtDur(s.Virt()), barWidth, bar, frac*100)
	}
}

// chunkLaneRow is one "pipeline.chunk" span decoded back into its
// schedule offsets (microseconds from checkpoint-stage start).
type chunkLaneRow struct {
	idx          int64
	kind         string
	raw, wire    int64
	ckptS, ckptE int64
	compS, compE int64
	xferS, xferE int64
	rstrS, rstrE int64
	workingSet   bool
}

func attrInt(s obs.SpanData, key string) int64 {
	for _, a := range s.Attrs {
		if a.Key == key {
			if v, ok := a.Value.(int64); ok {
				return v
			}
		}
	}
	return 0
}

func attrString(s obs.SpanData, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			if v, ok := a.Value.(string); ok {
				return v
			}
		}
	}
	return ""
}

func attrBool(s obs.SpanData, key string) bool {
	for _, a := range s.Attrs {
		if a.Key == key {
			if v, ok := a.Value.(bool); ok {
				return v
			}
		}
	}
	return false
}

// printChunkLanes renders the streamed migration's per-chunk schedule as a
// text gantt: one row per wire chunk, with the checkpoint (c), compress
// (z), transfer (x), and restore (r) intervals drawn on a shared timeline
// that starts at the checkpoint stage and ends when the last chunk is
// restored. The '|' column marks the working-set boundary where adaptive
// replay may begin.
func printChunkLanes(spans []obs.SpanData) {
	var rows []chunkLaneRow
	for _, s := range spans {
		if s.Name != migration.SpanPipelineChunk {
			continue
		}
		rows = append(rows, chunkLaneRow{
			idx:        attrInt(s, "chunk"),
			kind:       attrString(s, "kind"),
			raw:        attrInt(s, "raw_bytes"),
			wire:       attrInt(s, "wire_bytes"),
			ckptS:      attrInt(s, "ckpt_start_us"),
			ckptE:      attrInt(s, "ckpt_end_us"),
			compS:      attrInt(s, "comp_start_us"),
			compE:      attrInt(s, "comp_end_us"),
			xferS:      attrInt(s, "xfer_start_us"),
			xferE:      attrInt(s, "xfer_end_us"),
			rstrS:      attrInt(s, "rstr_start_us"),
			rstrE:      attrInt(s, "rstr_end_us"),
			workingSet: attrBool(s, "working_set"),
		})
	}
	if len(rows) == 0 {
		fmt.Println("no pipeline.chunk spans recorded")
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].idx < rows[j].idx })
	var end int64
	for _, r := range rows {
		if r.rstrE > end {
			end = r.rstrE
		}
	}
	if end <= 0 {
		end = 1
	}
	const width = 72
	scale := func(us int64) int {
		p := int(us * int64(width) / end)
		if p >= width {
			p = width - 1
		}
		if p < 0 {
			p = 0
		}
		return p
	}
	paint := func(row []byte, from, to int64, ch byte) {
		a, b := scale(from), scale(to)
		if to > from && b == a {
			b = a + 1 // sub-cell intervals still get one mark
		}
		for i := a; i < b && i < width; i++ {
			row[i] = ch
		}
	}
	fmt.Printf("pipeline lanes (c=checkpoint z=compress x=transfer r=restore, %v total):\n", time.Duration(end)*time.Microsecond)
	fmt.Printf("%5s %-10s %9s  %s\n", "CHUNK", "KIND", "WIRE", "TIMELINE")
	lastWS := -1
	for i, r := range rows {
		if r.workingSet {
			lastWS = i
		}
	}
	for i, r := range rows {
		row := make([]byte, width)
		for j := range row {
			row[j] = '.'
		}
		paint(row, r.ckptS, r.ckptE, 'c')
		paint(row, r.compS, r.compE, 'z')
		paint(row, r.xferS, r.xferE, 'x')
		paint(row, r.rstrS, r.rstrE, 'r')
		ws := " "
		if i == lastWS {
			ws = "|"
		}
		fmt.Printf("%5d %-10s %9d %s%s\n", r.idx, r.kind, r.wire, ws, string(row))
	}
}

// hopCache pairs a hop label with its report for the cache column.
type hopCache struct {
	label string
	rep   *migration.Report
}

// printCacheColumn renders the delta-migration cache accounting per hop:
// full digest hits, misses, rolling-delta hits, poisoned entries, and
// the wire bytes the cache kept off the air.
func printCacheColumn(hops []hopCache) {
	fmt.Printf("%-14s %6s %8s %8s %9s %13s %13s\n",
		"CACHE", "HITS", "MISSES", "ROLLING", "POISONED", "NOT SHIPPED", "TRANSFERRED")
	for _, h := range hops {
		r := h.rep
		fmt.Printf("%-14s %6d %8d %8d %9d %11.2fMB %11.2fMB\n",
			h.label, r.CacheHits, r.CacheMisses, r.CacheRollingHits, r.CachePoisoned,
			float64(r.CacheBytesNotShipped)/(1<<20), float64(r.TransferredBytes)/(1<<20))
	}
}

func fmtDur(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}

// printStageCheck prints the Figure 13 stage table from the span tree and
// verifies it against the Report's Timings array within 1%.
func printStageCheck(spans []obs.SpanData, rep *migration.Report) error {
	byStage := make(map[migration.Stage]time.Duration)
	for _, s := range spans {
		if st, ok := migration.StageBySpanName(s.Name); ok {
			byStage[st] += s.Virt()
		}
	}
	fmt.Printf("%-15s %12s %12s %8s\n", "STAGE", "SPANS", "TIMINGS", "DELTA")
	var firstErr error
	for _, st := range migration.Stages() {
		fromSpans := byStage[st]
		fromTimings := rep.Timings[st]
		delta := fromSpans - fromTimings
		pct := 0.0
		if fromTimings > 0 {
			pct = float64(delta) / float64(fromTimings) * 100
		}
		mark := "✓"
		if pct > 1 || pct < -1 {
			mark = "✗"
			if firstErr == nil {
				firstErr = fmt.Errorf("stage %s: span tree says %v, Timings says %v (%.2f%% apart)",
					st, fromSpans, fromTimings, pct)
			}
		}
		fmt.Printf("%-15s %12s %12s %7.2f%% %s\n",
			st.String(), fmtDur(fromSpans), fmtDur(fromTimings), pct, mark)
	}
	fmt.Printf("%-15s %12s %12s\n", "total", fmtDur(sumStages(byStage)), fmtDur(rep.Timings.Total()))
	fmt.Printf("user-perceived %v, excluding transfer %v\n",
		rep.Timings.UserPerceived().Round(time.Millisecond),
		rep.Timings.ExcludingTransfer().Round(time.Millisecond))
	if firstErr != nil {
		return fmt.Errorf("span tree and Timings disagree: %w", firstErr)
	}
	fmt.Println("span tree agrees with Report.Timings within 1% ✓")
	return nil
}

func sumStages(m map[migration.Stage]time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range m {
		sum += d
	}
	return sum
}
