// Command fluxstat runs one migration with telemetry enabled and prints a
// flamegraph-style text breakdown of the live span tree — the paper's
// Figure 13 stage decomposition, reproduced from spans rather than from
// the Report's Timings array — then cross-checks the two against each
// other: every stage span's virtual duration must agree with its Timings
// entry within 1% (by construction they agree exactly; fluxstat fails
// loudly if the instrumentation ever drifts).
//
// Usage:
//
//	fluxstat -app com.king.candycrushsaga -from nexus4 -to nexus7-2013
//	fluxstat -app com.whatsapp -trace whatsapp.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flux"
	"flux/internal/device"
	"flux/internal/migration"
	"flux/internal/obs"
)

func main() {
	var (
		appPkg    = flag.String("app", "com.king.candycrushsaga", "package to migrate")
		from      = flag.String("from", "nexus4", "home device model")
		to        = flag.String("to", "nexus7-2013", "guest device model")
		tracePath = flag.String("trace", "", "also write the span tree as Chrome trace-event JSON")
	)
	flag.Parse()
	obs.SetEnabled(true)
	if err := run(*appPkg, *from, *to, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "fluxstat:", err)
		os.Exit(1)
	}
}

func profileByName(name, instance string) (device.Profile, error) {
	switch name {
	case "nexus4":
		return device.Nexus4(instance), nil
	case "nexus7", "nexus7-2012":
		return device.Nexus7_2012(instance), nil
	case "nexus7-2013":
		return device.Nexus7_2013(instance), nil
	}
	return device.Profile{}, fmt.Errorf("unknown device %q (nexus4, nexus7-2012, nexus7-2013)", name)
}

func run(appPkg, from, to, tracePath string) error {
	homeProfile, err := profileByName(from, "home-"+from)
	if err != nil {
		return err
	}
	guestProfile, err := profileByName(to, "guest-"+to)
	if err != nil {
		return err
	}
	app := flux.AppByPackage(appPkg)
	if app == nil {
		return fmt.Errorf("app %s is not in the evaluation catalog", appPkg)
	}
	home, err := flux.NewDevice(homeProfile)
	if err != nil {
		return err
	}
	guest, err := flux.NewDevice(guestProfile)
	if err != nil {
		return err
	}
	if err := flux.Install(home, *app); err != nil {
		return err
	}
	if _, err := flux.PairDevices(home, guest, []string{appPkg}); err != nil {
		return err
	}
	if _, err := flux.LaunchApp(home, *app); err != nil {
		return err
	}
	rep, err := flux.Migrate(home, guest, appPkg, flux.MigrateOptions{})
	if err != nil {
		return err
	}

	spans := obs.SortTree(obs.T().Snapshot())
	fmt.Printf("%s: %s → %s\n\n", app.Spec.Label, home.Name(), guest.Name())
	printFlame(spans)
	fmt.Println()
	if err := printStageCheck(spans, rep); err != nil {
		return err
	}
	if tracePath != "" {
		if err := obs.T().WriteChromeTraceFile(tracePath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", tracePath)
	}
	return nil
}

// printFlame renders the span forest as an indented tree with virtual
// durations and a proportional bar, flamegraph-style.
func printFlame(spans []obs.SpanData) {
	depth := obs.Depth(spans)
	// Scale bars against the migrate root (or the longest root).
	var total time.Duration
	for _, s := range spans {
		if s.Name == migration.SpanMigrate || (s.Parent == 0 && s.Virt() > total) {
			if s.Virt() > total {
				total = s.Virt()
			}
		}
	}
	if total <= 0 {
		total = time.Nanosecond
	}
	const barWidth = 32
	fmt.Printf("%-44s %12s  %s\n", "SPAN", "VIRTUAL", "SHARE")
	for _, s := range spans {
		ind := strings.Repeat("  ", depth[s.ID])
		frac := float64(s.Virt()) / float64(total)
		if frac < 0 {
			frac = 0
		}
		n := int(frac*barWidth + 0.5)
		if n > barWidth {
			n = barWidth
		}
		bar := strings.Repeat("█", n)
		if n == 0 && s.Virt() > 0 {
			bar = "▏"
		}
		fmt.Printf("%-44s %12s  %-*s %5.1f%%\n",
			ind+s.Name, fmtDur(s.Virt()), barWidth, bar, frac*100)
	}
}

func fmtDur(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}

// printStageCheck prints the Figure 13 stage table from the span tree and
// verifies it against the Report's Timings array within 1%.
func printStageCheck(spans []obs.SpanData, rep *migration.Report) error {
	byStage := make(map[migration.Stage]time.Duration)
	for _, s := range spans {
		if st, ok := migration.StageBySpanName(s.Name); ok {
			byStage[st] += s.Virt()
		}
	}
	fmt.Printf("%-15s %12s %12s %8s\n", "STAGE", "SPANS", "TIMINGS", "DELTA")
	var firstErr error
	for _, st := range migration.Stages() {
		fromSpans := byStage[st]
		fromTimings := rep.Timings[st]
		delta := fromSpans - fromTimings
		pct := 0.0
		if fromTimings > 0 {
			pct = float64(delta) / float64(fromTimings) * 100
		}
		mark := "✓"
		if pct > 1 || pct < -1 {
			mark = "✗"
			if firstErr == nil {
				firstErr = fmt.Errorf("stage %s: span tree says %v, Timings says %v (%.2f%% apart)",
					st, fromSpans, fromTimings, pct)
			}
		}
		fmt.Printf("%-15s %12s %12s %7.2f%% %s\n",
			st.String(), fmtDur(fromSpans), fmtDur(fromTimings), pct, mark)
	}
	fmt.Printf("%-15s %12s %12s\n", "total", fmtDur(sumStages(byStage)), fmtDur(rep.Timings.Total()))
	fmt.Printf("user-perceived %v, excluding transfer %v\n",
		rep.Timings.UserPerceived().Round(time.Millisecond),
		rep.Timings.ExcludingTransfer().Round(time.Millisecond))
	if firstErr != nil {
		return fmt.Errorf("span tree and Timings disagree: %w", firstErr)
	}
	fmt.Println("span tree agrees with Report.Timings within 1% ✓")
	return nil
}

func sumStages(m map[migration.Stage]time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range m {
		sum += d
	}
	return sum
}
