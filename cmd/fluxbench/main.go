// Command fluxbench regenerates the tables and figures of the Flux paper's
// evaluation (EuroSys'15, §4) from the simulation.
//
// Usage:
//
//	fluxbench -all                 # everything, in paper order
//	fluxbench -table 2             # decorated services
//	fluxbench -table 3             # app workloads
//	fluxbench -fig 12              # overall migration times
//	fluxbench -fig 13              # stage breakdown
//	fluxbench -fig 14              # user-perceived time excl. transfer
//	fluxbench -fig 15              # data transferred vs APK size
//	fluxbench -fig 16              # overhead vs AOSP (wall-clock!)
//	fluxbench -fig 17              # Play-store install-size CDF
//	fluxbench -pairing             # pairing cost experiment
//	fluxbench -failures            # Facebook / Subway Surfers refusals
//	fluxbench -summary             # headline numbers vs paper
//	fluxbench -ablations           # design ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"flux"
	"flux/internal/apps"
	"flux/internal/experiments"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate a table (2 or 3)")
		fig        = flag.Int("fig", 0, "regenerate a figure (12-17)")
		pairing    = flag.Bool("pairing", false, "pairing cost experiment")
		failures   = flag.Bool("failures", false, "expected failures")
		summary    = flag.Bool("summary", false, "headline summary vs paper")
		ablations  = flag.Bool("ablations", false, "design ablations")
		all        = flag.Bool("all", false, "everything, in paper order")
		benchIters = flag.Int("bench-iters", 2000, "iterations per Figure 16 benchmark")
		playN      = flag.Int("play-n", 488259, "Figure 17 catalog size")
	)
	flag.Parse()
	if err := run(*table, *fig, *pairing, *failures, *summary, *ablations, *all, *benchIters, *playN); err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		os.Exit(1)
	}
}

func run(table, fig int, pairing, failures, summary, ablations, all bool, benchIters, playN int) error {
	w := os.Stdout
	if all {
		return flux.RunEvaluation(w, benchIters, playN)
	}
	needMatrix := summary || (fig >= 12 && fig <= 15)
	var cells []experiments.Cell
	if needMatrix {
		var err error
		if cells, err = experiments.RunMatrix(); err != nil {
			return err
		}
	}
	ran := false
	switch table {
	case 0:
	case 2:
		ran = true
		if err := experiments.Table2(w); err != nil {
			return err
		}
	case 3:
		ran = true
		experiments.Table3(w)
	default:
		return fmt.Errorf("no table %d in the paper's evaluation", table)
	}
	switch fig {
	case 0:
	case 12:
		ran = true
		experiments.Figure12(w, cells)
	case 13:
		ran = true
		experiments.Figure13(w, cells)
	case 14:
		ran = true
		experiments.Figure14(w, cells)
	case 15:
		ran = true
		experiments.Figure15(w, cells)
	case 16:
		ran = true
		if err := experiments.Figure16(w, benchIters); err != nil {
			return err
		}
	case 17:
		ran = true
		experiments.Figure17(w, playN)
	default:
		return fmt.Errorf("no figure %d in the paper's evaluation", fig)
	}
	if pairing {
		ran = true
		if err := experiments.PairingCost(w); err != nil {
			return err
		}
	}
	if failures {
		ran = true
		if err := experiments.Failures(w); err != nil {
			return err
		}
	}
	if summary {
		ran = true
		experiments.Summary(w, cells)
	}
	if ablations {
		ran = true
		candy := apps.ByPackage("com.king.candycrushsaga")
		netflix := apps.ByPackage("com.netflix.mediaclient")
		if err := experiments.AblationSelectiveVsFull(w, *candy); err != nil {
			return err
		}
		if err := experiments.AblationPrep(w, *candy); err != nil {
			return err
		}
		if err := experiments.AblationLinkDest(w); err != nil {
			return err
		}
		if err := experiments.AblationCompression(w, *netflix); err != nil {
			return err
		}
		if err := experiments.AblationPostCopy(w, *candy); err != nil {
			return err
		}
	}
	if !ran {
		flag.Usage()
	}
	return nil
}
