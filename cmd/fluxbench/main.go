// Command fluxbench regenerates the tables and figures of the Flux paper's
// evaluation (EuroSys'15, §4) from the simulation.
//
// Usage:
//
//	fluxbench -all                 # everything, in paper order
//	fluxbench -table 2             # decorated services
//	fluxbench -table 3             # app workloads
//	fluxbench -fig 12              # overall migration times
//	fluxbench -fig 13              # stage breakdown
//	fluxbench -fig 14              # user-perceived time excl. transfer
//	fluxbench -fig 15              # data transferred vs APK size
//	fluxbench -fig 16              # overhead vs AOSP (wall-clock!)
//	fluxbench -fig 17              # Play-store install-size CDF
//	fluxbench -pairing             # pairing cost experiment
//	fluxbench -failures            # Facebook / Subway Surfers refusals
//	fluxbench -summary             # headline numbers vs paper
//	fluxbench -ablations           # design ablations
//	fluxbench -pipeline            # streaming pipeline vs sequential matrix
//	fluxbench -faults              # fault matrix: recovery rate + overhead
//	fluxbench -faults -fault-rate 0.35 -fault-seed 7   # hostile link sweep point
//	fluxbench -commuter -json BENCH_commuter.json      # delta-migration commuter scenario
//	fluxbench -commuter -hops 4 -dirty 0.25 -cache-budget 4194304   # custom itinerary
//
// The 64-migration evaluation matrix runs on a bounded worker pool
// (-workers, default: one per CPU); its output is byte-identical for any
// worker count. Alongside the text output, fluxbench writes per-section
// wall-clock and virtual-time measurements to -json (default
// BENCH_results.json; pass -json "" to disable).
//
// -trace enables telemetry and writes every migration's span tree
// (one "cell" tree per matrix entry) as Chrome trace-event JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flux"
	"flux/internal/apps"
	"flux/internal/experiments"
	"flux/internal/obs"
	"flux/internal/profiling"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate a table (2 or 3)")
		fig        = flag.Int("fig", 0, "regenerate a figure (12-17)")
		pairing    = flag.Bool("pairing", false, "pairing cost experiment")
		failures   = flag.Bool("failures", false, "expected failures")
		summary    = flag.Bool("summary", false, "headline summary vs paper")
		ablations  = flag.Bool("ablations", false, "design ablations")
		pipeline   = flag.Bool("pipeline", false, "run the 64-migration matrix sequential and pipelined, report savings")
		faultsRun  = flag.Bool("faults", false, "run the 64-migration matrix under fault injection, report recovery rate and overhead")
		faultRate  = flag.Float64("fault-rate", 0.15, "per-chunk fault probability for -faults")
		faultSeed  = flag.Int64("fault-seed", 1, "base injector seed for -faults (per-cell seeds derive from it)")
		commuter   = flag.Bool("commuter", false, "run the delta-migration commuter scenario across the four device pairs")
		hops       = flag.Int("hops", 8, "round trips per pair for -commuter")
		dirty      = flag.Float64("dirty", 0.10, "fraction of heap dirtied between hops for -commuter")
		budget     = flag.Int64("cache-budget", 0, "per-device chunk-store byte budget for -commuter (0 = unbounded)")
		pipelinedC = flag.Bool("commuter-pipelined", false, "stream every commuter hop through the chunked pipeline")
		all        = flag.Bool("all", false, "everything, in paper order")
		benchIters = flag.Int("bench-iters", 2000, "iterations per Figure 16 benchmark")
		playN      = flag.Int("play-n", 488259, "Figure 17 catalog size")
		workers    = flag.Int("workers", 0, "migration-matrix worker pool size (0 = one per CPU)")
		jsonPath   = flag.String("json", "BENCH_results.json", "write machine-readable results here (empty = off)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON file of all migration span trees")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile here")
		memProfile = flag.String("memprofile", "", "write a heap profile here")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlags(explicit, *table, *fig, *faultRate, *dirty, *hops, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		obs.SetEnabled(true)
	}
	commuterSpec := experiments.DefaultCommuterSpec()
	commuterSpec.RoundTrips = *hops
	commuterSpec.DirtyRate = *dirty
	commuterSpec.CacheBudget = *budget
	commuterSpec.Pipelined = *pipelinedC
	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		os.Exit(1)
	}
	err = run(*table, *fig, *pairing, *failures, *summary, *ablations, *pipeline, *all, *benchIters, *playN, *workers, *jsonPath, *faultsRun, *faultRate, *faultSeed, *commuter, commuterSpec)
	prof.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := obs.T().WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "fluxbench: writing trace:", err)
			os.Exit(1)
		}
		total, dropped := obs.T().Stats()
		fmt.Fprintf(os.Stderr, "fluxbench: wrote %s (%d spans kept, %d dropped by the ring)\n",
			*tracePath, total-dropped, dropped)
	}
}

// modeFlagNames are the flags that each select an evaluation to run.
// Exactly one way of choosing work is allowed: either -all, or any
// combination of these.
var modeFlagNames = []string{
	"table", "fig", "pairing", "failures", "summary", "ablations",
	"pipeline", "faults", "commuter",
}

// scopedFlags are parameter flags that only mean something under their
// mode flag; setting one without the mode is an error, not a silent
// no-op (the historical behavior: `fluxbench -fault-rate 0.5` ran
// nothing and exited 0).
var scopedFlags = []struct{ flag, mode string }{
	{"fault-rate", "faults"},
	{"fault-seed", "faults"},
	{"hops", "commuter"},
	{"dirty", "commuter"},
	{"cache-budget", "commuter"},
	{"commuter-pipelined", "commuter"},
}

// validateFlags checks the explicitly-set flag combination (set is
// populated by flag.Visit) before any simulation runs, so a bad
// invocation fails fast with usage instead of half-running or silently
// no-oping.
func validateFlags(set map[string]bool, table, fig int, faultRate, dirty float64, hops int, budget int64) error {
	var modes []string
	for _, m := range modeFlagNames {
		if set[m] {
			modes = append(modes, "-"+m)
		}
	}
	// Scoped-flag violations first: "-fault-rate only applies with
	// -faults" beats a generic "nothing to run" for the same invocation.
	for _, s := range scopedFlags {
		if set[s.flag] && !set[s.mode] {
			return fmt.Errorf("-%s only applies with -%s", s.flag, s.mode)
		}
	}
	switch {
	case set["all"] && len(modes) > 0:
		return fmt.Errorf("-all already runs everything; drop %s", strings.Join(modes, ", "))
	case !set["all"] && len(modes) == 0:
		return fmt.Errorf("nothing to run: pick -all or a mode flag (-table, -fig, -summary, ...)")
	}
	if set["table"] && table != 2 && table != 3 {
		return fmt.Errorf("no table %d in the paper's evaluation (want 2 or 3)", table)
	}
	if set["fig"] && (fig < 12 || fig > 17) {
		return fmt.Errorf("no figure %d in the paper's evaluation (want 12-17)", fig)
	}
	if set["bench-iters"] && !set["all"] && fig != 16 {
		return fmt.Errorf("-bench-iters only applies with -fig 16 or -all")
	}
	if set["play-n"] && !set["all"] && fig != 17 {
		return fmt.Errorf("-play-n only applies with -fig 17 or -all")
	}
	if faultRate < 0 || faultRate > 1 {
		return fmt.Errorf("-fault-rate %g out of [0,1]", faultRate)
	}
	if dirty < 0 || dirty > 1 {
		return fmt.Errorf("-dirty %g out of [0,1]", dirty)
	}
	if set["hops"] && hops < 1 {
		return fmt.Errorf("-hops %d: need at least one round trip", hops)
	}
	if budget < 0 {
		return fmt.Errorf("-cache-budget %d is negative", budget)
	}
	return nil
}

func run(table, fig int, pairing, failures, summary, ablations, pipeline, all bool, benchIters, playN, workers int, jsonPath string, faultsRun bool, faultRate float64, faultSeed int64, commuter bool, commuterSpec experiments.CommuterSpec) error {
	w := os.Stdout
	if workers < 1 {
		workers = experiments.DefaultMatrixWorkers()
	}
	if all {
		res, err := flux.RunEvaluationResults(w, benchIters, playN, workers)
		if err != nil {
			return err
		}
		return writeResults(res, jsonPath)
	}
	res := experiments.NewResults(workers)
	needMatrix := summary || (fig >= 12 && fig <= 15)
	var cells []experiments.Cell
	if needMatrix {
		if err := res.Time("matrix", func() (map[string]float64, error) {
			start := time.Now()
			var err error
			cells, err = experiments.RunMatrixWorkers(workers)
			if err == nil {
				fmt.Fprintf(w, "(matrix: %d migrations on %d workers in %.2fs wall-clock)\n",
					len(cells), workers, time.Since(start).Seconds())
			}
			return experiments.MatrixMetrics(cells), err
		}); err != nil {
			return err
		}
	}
	ran := false
	timed := func(name string, fn func() (map[string]float64, error)) error {
		ran = true
		return res.Time(name, fn)
	}
	switch table {
	case 0:
	case 2:
		if err := timed("table2", func() (map[string]float64, error) { return nil, experiments.Table2(w) }); err != nil {
			return err
		}
	case 3:
		if err := timed("table3", func() (map[string]float64, error) { experiments.Table3(w); return nil, nil }); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no table %d in the paper's evaluation", table)
	}
	switch fig {
	case 0:
	case 12:
		if err := timed("figure12", func() (map[string]float64, error) {
			experiments.Figure12(w, cells)
			return experiments.MatrixMetrics(cells), nil
		}); err != nil {
			return err
		}
	case 13:
		if err := timed("figure13", func() (map[string]float64, error) {
			experiments.Figure13(w, cells)
			return experiments.MatrixMetrics(cells), nil
		}); err != nil {
			return err
		}
	case 14:
		if err := timed("figure14", func() (map[string]float64, error) {
			experiments.Figure14(w, cells)
			return experiments.MatrixMetrics(cells), nil
		}); err != nil {
			return err
		}
	case 15:
		if err := timed("figure15", func() (map[string]float64, error) {
			experiments.Figure15(w, cells)
			return experiments.MatrixMetrics(cells), nil
		}); err != nil {
			return err
		}
	case 16:
		if err := timed("figure16", func() (map[string]float64, error) {
			return nil, experiments.Figure16(w, benchIters)
		}); err != nil {
			return err
		}
	case 17:
		if err := timed("figure17", func() (map[string]float64, error) {
			experiments.Figure17(w, playN)
			return nil, nil
		}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no figure %d in the paper's evaluation", fig)
	}
	if pairing {
		if err := timed("pairing", func() (map[string]float64, error) { return nil, experiments.PairingCost(w) }); err != nil {
			return err
		}
	}
	if failures {
		if err := timed("failures", func() (map[string]float64, error) { return nil, experiments.Failures(w) }); err != nil {
			return err
		}
	}
	if summary {
		if err := timed("summary", func() (map[string]float64, error) {
			experiments.Summary(w, cells)
			return experiments.MatrixMetrics(cells), nil
		}); err != nil {
			return err
		}
	}
	if ablations {
		candy := apps.ByPackage("com.king.candycrushsaga")
		netflix := apps.ByPackage("com.netflix.mediaclient")
		steps := []struct {
			name string
			fn   func() (map[string]float64, error)
		}{
			{"ablation_selective_vs_full", func() (map[string]float64, error) {
				return nil, experiments.AblationSelectiveVsFull(w, *candy)
			}},
			{"ablation_prep", func() (map[string]float64, error) { return nil, experiments.AblationPrep(w, *candy) }},
			{"ablation_link_dest", func() (map[string]float64, error) { return nil, experiments.AblationLinkDest(w) }},
			{"ablation_compression", func() (map[string]float64, error) {
				return nil, experiments.AblationCompression(w, *netflix)
			}},
			{"ablation_post_copy", func() (map[string]float64, error) {
				return nil, experiments.AblationPostCopy(w, *candy)
			}},
		}
		for _, s := range steps {
			if err := timed(s.name, s.fn); err != nil {
				return err
			}
		}
		if err := timed("ablation_pipeline", func() (map[string]float64, error) {
			return nil, experiments.AblationPipeline(w, *candy)
		}); err != nil {
			return err
		}
	}
	if pipeline {
		if err := timed("pipeline", func() (map[string]float64, error) {
			start := time.Now()
			m, err := experiments.ComparePipeline(w, workers)
			if err == nil {
				fmt.Fprintf(w, "(pipeline: two matrices on %d workers in %.2fs wall-clock)\n",
					workers, time.Since(start).Seconds())
			}
			return m, err
		}); err != nil {
			return err
		}
	}
	if faultsRun {
		if err := timed("fault_matrix", func() (map[string]float64, error) {
			start := time.Now()
			m, err := experiments.FaultMatrix(w, workers, faultSeed, faultRate)
			if err == nil {
				fmt.Fprintf(w, "(faults: clean + faulted matrix on %d workers in %.2fs wall-clock)\n",
					workers, time.Since(start).Seconds())
			}
			return m, err
		}); err != nil {
			return err
		}
	}
	if commuter {
		if err := timed("commuter", func() (map[string]float64, error) {
			start := time.Now()
			m, err := experiments.Commuter(w, workers, commuterSpec)
			if err == nil {
				fmt.Fprintf(w, "(commuter: %d hops per pair on %d workers in %.2fs wall-clock)\n",
					2*commuterSpec.RoundTrips, workers, time.Since(start).Seconds())
			}
			return m, err
		}); err != nil {
			return err
		}
	}
	if !ran {
		// validateFlags rejects mode-less invocations before run; reaching
		// here means a programming error, not a user one.
		return fmt.Errorf("no evaluation selected")
	}
	return writeResults(res, jsonPath)
}

// writeResults serializes res to jsonPath unless disabled.
func writeResults(res *experiments.Results, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	if err := res.WriteFile(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fluxbench: wrote %s (%d sections)\n", jsonPath, len(res.Sections))
	return nil
}
