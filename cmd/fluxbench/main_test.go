package main

import (
	"strings"
	"testing"
)

func set(flags ...string) map[string]bool {
	m := map[string]bool{}
	for _, f := range flags {
		m[f] = true
	}
	return m
}

// validate applies defaults for the value parameters so table-driven
// cases only spell out what they test.
type flagCase struct {
	name      string
	set       map[string]bool
	table     int
	fig       int
	faultRate float64
	dirty     float64
	hops      int
	budget    int64
	wantErr   string // "" = must pass
}

func TestValidateFlags(t *testing.T) {
	cases := []flagCase{
		{name: "all alone", set: set("all")},
		{name: "summary alone", set: set("summary")},
		{name: "table 2", set: set("table"), table: 2},
		{name: "fig 15", set: set("fig"), fig: 15},
		{name: "combined modes", set: set("summary", "pipeline", "faults")},
		{name: "faults with scoped params", set: set("faults", "fault-rate", "fault-seed"), faultRate: 0.35},
		{name: "commuter with scoped params", set: set("commuter", "hops", "dirty", "cache-budget", "commuter-pipelined"), hops: 4, dirty: 0.25, budget: 1 << 20},
		{name: "bench-iters with fig 16", set: set("fig", "bench-iters"), fig: 16},
		{name: "bench-iters with all", set: set("all", "bench-iters")},
		{name: "play-n with fig 17", set: set("fig", "play-n"), fig: 17},
		{name: "globals anywhere", set: set("summary", "workers", "json", "trace")},

		{name: "no mode", set: set(), wantErr: "nothing to run"},
		{name: "only globals", set: set("workers", "json"), wantErr: "nothing to run"},
		{name: "all plus mode", set: set("all", "summary"), wantErr: "-all already runs everything"},
		{name: "all plus table", set: set("all", "table"), table: 2, wantErr: "drop -table"},
		{name: "table 0 explicit", set: set("table"), table: 0, wantErr: "no table 0"},
		{name: "table 4", set: set("table"), table: 4, wantErr: "no table 4"},
		{name: "fig 11", set: set("fig"), fig: 11, wantErr: "no figure 11"},
		{name: "fig 18", set: set("fig"), fig: 18, wantErr: "no figure 18"},
		{name: "fault-rate without faults", set: set("fault-rate"), faultRate: 0.5, wantErr: "-fault-rate only applies with -faults"},
		{name: "fault-seed without faults", set: set("summary", "fault-seed"), wantErr: "-fault-seed only applies with -faults"},
		{name: "dirty without commuter", set: set("pipeline", "dirty"), dirty: 0.5, wantErr: "-dirty only applies with -commuter"},
		{name: "hops without commuter", set: set("all", "hops"), hops: 4, wantErr: "-hops only applies with -commuter"},
		{name: "bench-iters without fig 16", set: set("fig", "bench-iters"), fig: 12, wantErr: "-bench-iters only applies"},
		{name: "play-n without fig 17", set: set("summary", "play-n"), wantErr: "-play-n only applies"},
		{name: "fault rate range", set: set("faults", "fault-rate"), faultRate: 1.5, wantErr: "out of [0,1]"},
		{name: "dirty range", set: set("commuter", "dirty"), dirty: -0.1, wantErr: "out of [0,1]"},
		{name: "zero hops", set: set("commuter", "hops"), hops: 0, wantErr: "at least one round trip"},
		{name: "negative budget", set: set("commuter", "cache-budget"), budget: -1, wantErr: "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Unset value params keep their in-range flag defaults.
			if _, ok := tc.set["fault-rate"]; !ok && tc.faultRate == 0 {
				tc.faultRate = 0.15
			}
			if _, ok := tc.set["dirty"]; !ok && tc.dirty == 0 {
				tc.dirty = 0.10
			}
			if _, ok := tc.set["hops"]; !ok && tc.hops == 0 {
				tc.hops = 8
			}
			err := validateFlags(tc.set, tc.table, tc.fig, tc.faultRate, tc.dirty, tc.hops, tc.budget)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("combination passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
