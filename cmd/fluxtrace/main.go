// Command fluxtrace runs an evaluation app's workload and dumps its
// Selective Record call log — the pruned sequence of service calls a
// migration would replay on the guest device. With -full it also shows
// what an undecorated full-record baseline would have kept, making the
// selective pruning visible.
//
// Usage:
//
//	fluxtrace -app com.king.candycrushsaga
//	fluxtrace -app com.whatsapp -full
package main

import (
	"flag"
	"fmt"
	"os"

	"flux"
	"flux/internal/apps"
	"flux/internal/device"
	"flux/internal/record"
)

func main() {
	var (
		appPkg = flag.String("app", "com.king.candycrushsaga", "evaluation app to trace")
		full   = flag.Bool("full", false, "also run the full-record baseline")
	)
	flag.Parse()
	if err := run(*appPkg, *full); err != nil {
		fmt.Fprintln(os.Stderr, "fluxtrace:", err)
		os.Exit(1)
	}
}

func run(appPkg string, full bool) error {
	app := flux.AppByPackage(appPkg)
	if app == nil {
		return fmt.Errorf("app %s not in the evaluation catalog", appPkg)
	}
	entries, stats, err := trace(*app, false)
	if err != nil {
		return err
	}
	fmt.Printf("%s — workload: %s\n", app.Spec.Label, app.Workload)
	fmt.Printf("selective record: %d calls observed on decorated interfaces, %d recorded, %d survive pruning\n",
		stats.Observed, stats.Recorded, len(entries))
	fmt.Printf("                  %d suppressed by @drop(this) annihilation, %d recorded entries later pruned\n\n",
		stats.DroppedByRule, stats.Pruned)
	printLog(entries)
	if full {
		fullEntries, _, err := trace(*app, true)
		if err != nil {
			return err
		}
		fmt.Printf("\nfull-record baseline would keep %d entries (%.1fx the selective log)\n",
			len(fullEntries), float64(len(fullEntries))/float64(max(1, len(entries))))
	}
	return nil
}

func trace(app flux.App, full bool) ([]*record.Entry, record.Stats, error) {
	dev, err := device.New(device.Nexus4("trace"))
	if err != nil {
		return nil, record.Stats{}, err
	}
	if full {
		for _, reg := range dev.System.Catalog() {
			dev.Recorder.SetFullRecord(reg.Descriptor, true)
		}
	}
	if _, err := apps.Launch(dev, app); err != nil {
		return nil, record.Stats{}, err
	}
	return dev.Recorder.Log().AppEntries(app.Spec.Package), dev.Recorder.Stats(), nil
}

func printLog(entries []*record.Entry) {
	fmt.Printf("%4s  %-18s %-28s %-8s %s\n", "SEQ", "SERVICE", "METHOD", "HANDLE", "ARGS")
	for _, e := range entries {
		args := "<unparseable>"
		if p, err := e.Parcel(); err == nil {
			args = p.String()
		}
		fmt.Printf("%4d  %-18s %-28s h#%-6d %s\n", e.Seq, e.Service, e.Method, e.Handle, args)
	}
}
