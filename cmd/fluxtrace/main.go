// Command fluxtrace runs an evaluation app's workload and dumps its
// Selective Record call log — the pruned sequence of service calls a
// migration would replay on the guest device. With -full it also shows
// what an undecorated full-record baseline would have kept, making the
// selective pruning visible.
//
// It also speaks the on-disk seglog format (DESIGN.md §5j): -o saves
// the traced log, -i dumps a saved one, -verify checks every CRC,
// hash-chain link, segment Merkle root, and anchor, and -tamper flips a
// single bit so CI can assert that -verify then refuses the file.
//
// Usage:
//
//	fluxtrace -app com.king.candycrushsaga
//	fluxtrace -app com.whatsapp -full
//	fluxtrace -app com.whatsapp -o trace.flxg
//	fluxtrace -i trace.flxg
//	fluxtrace -verify trace.flxg
//	fluxtrace -tamper trace.flxg && fluxtrace -verify trace.flxg  # fails
package main

import (
	"flag"
	"fmt"
	"os"

	"flux"
	"flux/internal/apps"
	"flux/internal/device"
	"flux/internal/record"
	"flux/internal/seglog"
)

func main() {
	var (
		appPkg  = flag.String("app", "com.king.candycrushsaga", "evaluation app to trace")
		full    = flag.Bool("full", false, "also run the full-record baseline")
		outPath = flag.String("o", "", "save the traced log (all apps) to this path as a seglog stream")
		inPath  = flag.String("i", "", "load and print a saved log instead of tracing")
		verify  = flag.String("verify", "", "verify a saved log's hash chain, segment roots, and anchor; exit 1 on failure")
		tamper  = flag.String("tamper", "", "flip one payload bit in a saved log in place (for testing -verify)")
	)
	flag.Parse()
	var err error
	switch {
	case *verify != "":
		err = runVerify(*verify)
	case *tamper != "":
		err = runTamper(*tamper)
	case *inPath != "":
		err = runDump(*inPath)
	default:
		err = run(*appPkg, *full, *outPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxtrace:", err)
		os.Exit(1)
	}
}

func run(appPkg string, full bool, outPath string) error {
	app := flux.AppByPackage(appPkg)
	if app == nil {
		return fmt.Errorf("app %s not in the evaluation catalog", appPkg)
	}
	entries, stats, log, err := trace(*app, false)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := log.SaveFile(outPath); err != nil {
			return err
		}
		fmt.Printf("saved %d-entry log to %s\n\n", log.Len(), outPath)
	}
	fmt.Printf("%s — workload: %s\n", app.Spec.Label, app.Workload)
	fmt.Printf("selective record: %d calls observed on decorated interfaces, %d recorded, %d survive pruning\n",
		stats.Observed, stats.Recorded, len(entries))
	fmt.Printf("                  %d suppressed by @drop(this) annihilation, %d recorded entries later pruned\n\n",
		stats.DroppedByRule, stats.Pruned)
	printLog(entries)
	if full {
		fullEntries, _, _, err := trace(*app, true)
		if err != nil {
			return err
		}
		fmt.Printf("\nfull-record baseline would keep %d entries (%.1fx the selective log)\n",
			len(fullEntries), float64(len(fullEntries))/float64(max(1, len(entries))))
	}
	return nil
}

func trace(app flux.App, full bool) ([]*record.Entry, record.Stats, *record.Log, error) {
	dev, err := device.New(device.Nexus4("trace"))
	if err != nil {
		return nil, record.Stats{}, nil, err
	}
	if full {
		for _, reg := range dev.System.Catalog() {
			dev.Recorder.SetFullRecord(reg.Descriptor, true)
		}
	}
	if _, err := apps.Launch(dev, app); err != nil {
		return nil, record.Stats{}, nil, err
	}
	log := dev.Recorder.Log()
	return log.AppEntries(app.Spec.Package), dev.Recorder.Stats(), log, nil
}

// runDump loads a saved log strictly and prints every app's entries.
func runDump(path string) error {
	log, err := record.LoadFile(path)
	if err != nil {
		return err
	}
	for _, app := range log.Apps() {
		fmt.Printf("%s (%d entries)\n", app, len(log.AppEntries(app)))
		printLog(log.AppEntries(app))
		fmt.Println()
	}
	return nil
}

// runVerify checks a saved seglog file end to end: every frame CRC,
// every hash-chain link, every sealed segment's Merkle root, the
// trailing anchor, and one inclusion proof per sealed segment. Legacy
// v1 files fail verification by fiat — they carry no hash chain, so
// there is nothing cryptographic to verify.
func runVerify(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(seglog.Magic) || string(data[:len(seglog.Magic)]) != seglog.Magic {
		return fmt.Errorf("%s: not a seglog (v2) log file; legacy v1 containers carry no hash chain to verify", path)
	}
	sl, err := seglog.Load(data, seglog.DefaultSegmentLeaves)
	if err != nil {
		return fmt.Errorf("%s: verification failed: %w", path, err)
	}
	fmt.Printf("%s: %d bytes, %d entries (%d pruned), %d sealed segments\n",
		path, len(data), sl.Len(), sl.Pruned(), len(sl.Seals()))
	proofs := 0
	for _, s := range sl.Seals() {
		fmt.Printf("  segment %3d: leaves [%d,%d)  root %x\n", s.Index, s.Start, s.Start+s.Count, s.Root)
		// Spot-check one inclusion proof per segment: the O(log n) path a
		// guest walks instead of re-hashing the whole segment.
		mid := s.Start + s.Count/2
		p, err := sl.Prove(mid)
		if err != nil {
			return fmt.Errorf("%s: proving leaf %d: %w", path, mid, err)
		}
		if !seglog.VerifyInclusion(p, s.Root) {
			return fmt.Errorf("%s: inclusion proof for leaf %d does not verify", path, mid)
		}
		proofs++
	}
	a := sl.Anchor()
	fmt.Printf("  chain head %x\n", sl.Head())
	fmt.Printf("  anchor: %d leaves, %d segment roots, %d wire bytes\n", a.Leaves, len(a.Roots), len(a.Marshal()))
	fmt.Printf("ok: every CRC, chain link, and segment root recomputed; %d inclusion proofs spot-checked\n", proofs)
	return nil
}

// runTamper flips a single bit in the middle of a saved log, in place.
// It exists so CI (and skeptical humans) can watch -verify refuse the
// result: the smoke test records a log, verifies it, tampers, and
// asserts detection.
func runTamper(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) <= len(seglog.Magic)+1 {
		return fmt.Errorf("%s: too short to tamper", path)
	}
	// Aim past the header, at the middle of the stream body — payload
	// bytes, not framing, so detection exercises the hash chain rather
	// than a length check.
	off := (len(seglog.Magic) + 1 + len(data)) / 2
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("flipped bit 0 of byte %d in %s\n", off, path)
	return nil
}

func printLog(entries []*record.Entry) {
	fmt.Printf("%4s  %-18s %-28s %-8s %s\n", "SEQ", "SERVICE", "METHOD", "HANDLE", "ARGS")
	for _, e := range entries {
		args := "<unparseable>"
		if p, err := e.Parcel(); err == nil {
			args = p.String()
		}
		fmt.Printf("%4d  %-18s %-28s h#%-6d %s\n", e.Seq, e.Service, e.Method, e.Handle, args)
	}
}
