// Command fluxfleet drives the fleet-scale discrete-event migration
// engine: N devices and M concurrent migrations on one shared virtual
// clock, with pluggable placement policies and per-AP admission
// control (internal/fleet).
//
// Usage:
//
//	fluxfleet -spec fleet/specs/smoke.yaml              # run, report on stdout
//	fluxfleet -spec ... -json BENCH_fleet.json          # also write the report file
//	fluxfleet -spec ... -check BENCH_fleet.json         # diff against a committed baseline
//	fluxfleet -spec ... -workers 4                      # profiling pool width (report bytes never change)
//	fluxfleet -spec ... -v                              # progress + wall-clock events/sec on stderr
//	fluxfleet -spec ... -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The report on stdout is deterministic: same spec + seed produce
// byte-identical JSON at any -workers width. Wall-clock measurements
// (events/sec) go to stderr only — they never contaminate the report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flux/internal/fleet"
	"flux/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fluxfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath   = flag.String("spec", "", "fleet spec file (YAML subset or JSON)")
		workers    = flag.Int("workers", 0, "profiling pool width (0 = one per CPU); never changes report bytes")
		jsonPath   = flag.String("json", "", "write the report JSON here")
		checkPath  = flag.String("check", "", "compare the report against this committed baseline")
		verbose    = flag.Bool("v", false, "progress and wall-clock throughput on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile here")
		memProfile = flag.String("memprofile", "", "write a heap profile here")
	)
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		return fmt.Errorf("missing -spec")
	}
	spec, err := fleet.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer prof.Stop()

	if *verbose {
		fmt.Fprintf(os.Stderr, "fluxfleet: %s: profiling migration classes (workers=%d)...\n", spec.Name, *workers)
	}
	buildStart := time.Now()
	sim, err := fleet.NewSim(spec, *workers)
	if err != nil {
		return err
	}
	buildWall := time.Since(buildStart)
	runStart := time.Now()
	sim.Run()
	runWall := time.Since(runStart)
	rep := sim.Report()
	if *verbose {
		eps := float64(rep.Events) / runWall.Seconds()
		fmt.Fprintf(os.Stderr, "fluxfleet: build %.0fms, run %.0fms: %d events (%.2fM events/sec), %d/%d migrations completed\n",
			float64(buildWall.Microseconds())/1000, float64(runWall.Microseconds())/1000,
			rep.Events, eps/1e6, rep.Completed, rep.Migrations)
	}

	data, err := rep.Render()
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			return err
		}
	}
	if *checkPath != "" {
		baseline, err := fleet.LoadReport(*checkPath)
		if err != nil {
			return err
		}
		if err := rep.Check(baseline); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "fluxfleet: report matches baseline %s\n", *checkPath)
		}
	}
	return nil
}
