// Command fluxlab runs declarative Flux experiments: a spec (YAML or
// JSON) names a scenario, seed, sweep axes, and success criteria; the
// runner executes it and emits a deterministic report — per-cell p50/p99
// stage timings and byte counters, a calibration score against the
// paper's published numbers, a counterfactual policy analysis, and the
// strong-signal validation battery (≥30 named invariants, each reported
// individually).
//
// Usage:
//
//	fluxlab run lab/specs/smoke.yaml                  # run a spec, print the report
//	fluxlab run -record BENCH_trajectory.json spec    # also append a trajectory record
//	fluxlab run -out report.json spec                 # also write the raw report JSON
//	fluxlab diff old.json new.json                    # compare two trajectory records
//	fluxlab diff -tolerance 5 old.json new.json       # custom drift tolerance (percent)
//	fluxlab signals                                   # list the signal catalog
//
// The report on stdout is deterministic: identical (spec, seed) produce
// byte-identical output at any -workers width. Progress lines go to
// stderr. Exit status is non-zero when any signal (including the
// calibration MAPE/Pearson gates) fails, or when a diff finds a
// regression beyond tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flux/internal/atomicio"
	"flux/internal/lab"
	"flux/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxlab:", err)
		os.Exit(1)
	}
}

// errFailed marks a completed run or diff whose verdict is failure; main
// exits non-zero without the usage hint.
type errFailed struct{ msg string }

func (e errFailed) Error() string { return e.msg }

func usage(w *os.File) {
	fmt.Fprintln(w, `usage:
  fluxlab run [-workers N] [-record FILE] [-out FILE] [-q] [-cpuprofile FILE] [-memprofile FILE] SPEC
  fluxlab diff [-tolerance PCT] OLD NEW
  fluxlab signals`)
}

func run(args []string) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "diff":
		return diffCmd(args[1:])
	case "signals":
		return signalsCmd()
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return nil
	default:
		usage(os.Stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("fluxlab run", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "execution width (0 = one per CPU); never changes report bytes")
	record := fs.String("record", "", "append a trajectory record to this file")
	out := fs.String("out", "", "write the raw report JSON here")
	quiet := fs.Bool("q", false, "suppress progress lines on stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile here")
	memProfile := fs.String("memprofile", "", "write a heap profile here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		usage(os.Stderr)
		return fmt.Errorf("run: want exactly one spec path, got %d args", fs.NArg())
	}
	spec, err := lab.LoadSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer prof.Stop()
	runner := &lab.Runner{Spec: spec, Workers: *workers}
	if !*quiet {
		runner.Progress = os.Stderr
	}
	rep, err := runner.Run()
	if err != nil {
		return err
	}
	rep.Render(os.Stdout)
	if *out != "" {
		if err := writeReportJSON(*out, rep); err != nil {
			return err
		}
	}
	if *record != "" {
		if err := lab.AppendRecord(*record, lab.NewRecord(rep, *workers, ".")); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fluxlab: appended trajectory record to %s\n", *record)
	}
	if rep.Failed() {
		return errFailed{fmt.Sprintf("run: %d of %d signals failed", rep.SignalsFailed, len(rep.Signals))}
	}
	return nil
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("fluxlab diff", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", lab.DefaultDiffTolerancePct, "allowed relative drift per metric, percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		usage(os.Stderr)
		return fmt.Errorf("diff: want OLD and NEW trajectory files, got %d args", fs.NArg())
	}
	oldRec, err := lab.LatestRecord(fs.Arg(0))
	if err != nil {
		return err
	}
	newRec, err := lab.LatestRecord(fs.Arg(1))
	if err != nil {
		return err
	}
	d := lab.Diff(oldRec.Report, newRec.Report, *tolerance)
	d.Render(os.Stdout)
	if d.Failed() {
		return errFailed{fmt.Sprintf("diff: %d regressions beyond ±%.1f%%", len(d.Regressions), d.TolerancePct)}
	}
	return nil
}

func signalsCmd() error {
	for _, s := range lab.SignalCatalog() {
		fmt.Printf("%-36s %s\n", s.Name, s.Desc)
	}
	return nil
}

func writeReportJSON(path string, rep *lab.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling report: %w", err)
	}
	data = append(data, '\n')
	return atomicio.WriteFile(path, data, 0o644)
}
