// Command fluxd demonstrates a Flux migration between two simulated
// devices with the checkpoint image shipped over a real TCP loopback
// connection — the wire path a deployment would use — while stage timings
// remain governed by the modelled wireless link.
//
// Usage:
//
//	fluxd -app com.netflix.mediaclient -from nexus4 -to nexus7-2013
//	fluxd -app com.whatsapp -trace trace.json -metrics
//	fluxd -list
//
// -trace writes the migration's span tree as Chrome trace-event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev); -metrics
// prints the telemetry registry in Prometheus text exposition format.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"flux"
	"flux/internal/device"
	"flux/internal/migration"
	"flux/internal/obs"
)

func profileByName(name, instance string) (device.Profile, error) {
	switch name {
	case "nexus4":
		return device.Nexus4(instance), nil
	case "nexus7", "nexus7-2012":
		return device.Nexus7_2012(instance), nil
	case "nexus7-2013":
		return device.Nexus7_2013(instance), nil
	}
	return device.Profile{}, fmt.Errorf("unknown device %q (nexus4, nexus7-2012, nexus7-2013)", name)
}

func main() {
	var (
		appPkg    = flag.String("app", "com.netflix.mediaclient", "package to migrate (see -list)")
		from      = flag.String("from", "nexus4", "home device model")
		to        = flag.String("to", "nexus7-2013", "guest device model")
		list      = flag.Bool("list", false, "list migratable evaluation apps")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file of the migration's span tree")
		metrics   = flag.Bool("metrics", false, "print telemetry metrics in Prometheus text format after the run")
	)
	flag.Parse()
	if *list {
		for _, a := range flux.EvaluationApps() {
			note := ""
			if a.Spec.PreserveEGLContext {
				note = " (refused: preserves EGL context)"
			}
			if a.Spec.ExtraProcesses > 0 {
				note = " (refused: multi-process)"
			}
			fmt.Printf("  %-28s %s%s\n", a.Spec.Package, a.Spec.Label, note)
		}
		return
	}
	if *tracePath != "" || *metrics {
		obs.SetEnabled(true)
	}
	if err := run(*appPkg, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "fluxd:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := obs.T().WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "fluxd: writing trace:", err)
			os.Exit(1)
		}
		total, dropped := obs.T().Stats()
		fmt.Printf("\nwrote %s (%d spans, %d dropped)\n", *tracePath, total-dropped, dropped)
	}
	if *metrics {
		fmt.Println("\n# telemetry (Prometheus text exposition)")
		if err := obs.M().WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fluxd: writing metrics:", err)
			os.Exit(1)
		}
	}
}

func run(appPkg, from, to string) error {
	homeProfile, err := profileByName(from, "home-"+from)
	if err != nil {
		return err
	}
	guestProfile, err := profileByName(to, "guest-"+to)
	if err != nil {
		return err
	}
	app := flux.AppByPackage(appPkg)
	if app == nil {
		return fmt.Errorf("app %s is not in the evaluation catalog (try -list)", appPkg)
	}

	home, err := flux.NewDevice(homeProfile)
	if err != nil {
		return err
	}
	guest, err := flux.NewDevice(guestProfile)
	if err != nil {
		return err
	}
	fmt.Printf("home:  %s (%s, kernel %s, %s)\n", home.Name(), homeProfile.Model, homeProfile.KernelVersion, homeProfile.Screen)
	fmt.Printf("guest: %s (%s, kernel %s, %s)\n", guest.Name(), guestProfile.Model, guestProfile.KernelVersion, guestProfile.Screen)

	if err := flux.Install(home, *app); err != nil {
		return err
	}
	pres, err := flux.PairDevices(home, guest, []string{appPkg})
	if err != nil {
		return err
	}
	fmt.Printf("paired: %.1f MB frameworks (%.1f MB after link-dest, %.1f MB compressed over the air)\n",
		float64(pres.ConstantBytes)/(1<<20), float64(pres.TransferBytes)/(1<<20), float64(pres.CompressedBytes)/(1<<20))

	if _, err := flux.LaunchApp(home, *app); err != nil {
		return err
	}
	fmt.Printf("launched %s; running workload: %s\n", app.Spec.Label, app.Workload)

	rep, err := flux.Migrate(home, guest, appPkg, flux.MigrateOptions{})
	if err != nil {
		return err
	}

	// Ship the actual transferred byte volume across a real loopback TCP
	// connection, demonstrating the wire path.
	wireDur, err := shipOverLoopback(rep.TransferredBytes)
	if err != nil {
		fmt.Printf("loopback demo skipped: %v\n", err)
	} else {
		fmt.Printf("loopback TCP demo: %d bytes in %v (modelled WiFi: %v)\n",
			rep.TransferredBytes, wireDur.Round(time.Millisecond), rep.Timings[migration.StageTransfer].Round(time.Millisecond))
	}

	fmt.Println("\nmigration report:")
	fmt.Printf("  preparation:    %8v\n", rep.Timings[migration.StagePreparation].Round(time.Millisecond))
	fmt.Printf("  checkpoint:     %8v\n", rep.Timings[migration.StageCheckpoint].Round(time.Millisecond))
	fmt.Printf("  transfer:       %8v  (%.2f MB)\n", rep.Timings[migration.StageTransfer].Round(time.Millisecond), float64(rep.TransferredBytes)/(1<<20))
	fmt.Printf("  restore:        %8v\n", rep.Timings[migration.StageRestore].Round(time.Millisecond))
	fmt.Printf("  reintegration:  %8v  (replay: %+v)\n", rep.Timings[migration.StageReintegration].Round(time.Millisecond), rep.ReplayStats)
	fmt.Printf("  total:          %8v  (user-perceived %v)\n", rep.Timings.Total().Round(time.Millisecond), rep.Timings.UserPerceived().Round(time.Millisecond))
	if rep.StateConsistent() {
		fmt.Println("  service state:  consistent across devices ✓")
	} else {
		fmt.Println("  service state:  DIVERGED ✗")
	}
	act := rep.App.MainActivity()
	fmt.Printf("  UI on guest:    %s window, drawn for %s\n", act.State(), act.Window().ViewRoot().DrawnFor())
	return nil
}

// shipOverLoopback streams n synthetic bytes through a real TCP socket.
func shipOverLoopback(n int64) (time.Duration, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	errc := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		_, err = io.Copy(io.Discard, conn)
		errc <- err
	}()
	start := time.Now()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 64<<10)
	var sent int64
	for sent < n {
		chunk := int64(len(buf))
		if n-sent < chunk {
			chunk = n - sent
		}
		m, err := conn.Write(buf[:chunk])
		if err != nil {
			conn.Close()
			return 0, err
		}
		sent += int64(m)
	}
	conn.Close()
	if err := <-errc; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
