package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/cria"
	"flux/internal/record"
	"flux/internal/services"
	"flux/internal/vet"
)

// TestValidateFlags pins the flag-hygiene contract: every bad
// combination fails fast with a message naming the offending flag, and
// the good ones resolve to the right layer/check selection.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     map[string]bool
		layers  string
		logs    string
		format  string
		only    string
		skip    string
		wantErr string // substring of the error, "" = must succeed
	}{
		{name: "defaults", layers: "spec,src", format: "text"},
		{name: "unknown layer", layers: "spec,web", format: "text", wantErr: `unknown layer "web"`},
		{name: "logs layer without path", layers: "logs", format: "text", wantErr: "needs -logs"},
		{name: "logs path implies layer", layers: "spec", logs: "run.flxl", format: "text"},
		{name: "image without logs", set: map[string]bool{"image": true}, layers: "spec,src", format: "text", wantErr: "-image only applies with -logs"},
		{name: "fullrecord without logs", set: map[string]bool{"fullrecord": true}, layers: "src", format: "text", wantErr: "-fullrecord only applies with -logs"},
		{name: "bad format", layers: "src", format: "yaml", wantErr: `unknown -format "yaml"`},
		{name: "json format", layers: "src", format: "json"},
		{name: "sarif format", layers: "src", format: "sarif"},
		{name: "only and skip conflict", set: map[string]bool{"only": true, "skip": true}, layers: "src", format: "text",
			only: "maprange", skip: "wallclock", wantErr: "mutually exclusive"},
		{name: "only without src layer", set: map[string]bool{"only": true}, layers: "spec", format: "text",
			only: "maprange", wantErr: "-only only applies with the src layer"},
		{name: "timings without src layer", set: map[string]bool{"timings": true}, layers: "spec", format: "text",
			wantErr: "-timings only applies with the src layer"},
		{name: "unknown check in only", set: map[string]bool{"only": true}, layers: "src", format: "text",
			only: "wallclocks", wantErr: `unknown check "wallclocks"`},
		{name: "unknown check in skip", set: map[string]bool{"skip": true}, layers: "src", format: "text",
			skip: "nosuch", wantErr: `unknown check "nosuch"`},
		{name: "valid selection", set: map[string]bool{"only": true}, layers: "src", format: "text",
			only: "lock-order, durability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := tc.set
			if set == nil {
				set = map[string]bool{}
			}
			opts, err := validateFlags(set, tc.layers, tc.logs, tc.format, tc.only, tc.skip)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v (opts %+v)", tc.wantErr, err, opts)
			}
		})
	}
}

// TestValidateFlagsSelection: comma lists are trimmed and resolved.
func TestValidateFlagsSelection(t *testing.T) {
	opts, err := validateFlags(map[string]bool{"only": true}, "src", "", "text", " lock-order ,durability ", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.only) != 2 || opts.only[0] != "lock-order" || opts.only[1] != "durability" {
		t.Fatalf("only = %v", opts.only)
	}
	if !opts.layers["src"] || opts.layers["spec"] {
		t.Fatalf("layers = %v", opts.layers)
	}
}

// TestRunSpecShippedClean is the CLI-level acceptance gate: the spec layer
// over the shipped catalog, with the shipped waivers and the live proxy
// registry, reports nothing.
func TestRunSpecShippedClean(t *testing.T) {
	if fs := runSpec(); len(fs) != 0 {
		t.Fatalf("shipped specs not clean: %v", fs)
	}
}

// TestRunLogsEndToEnd exercises the persisted-log path end to end:
// SaveFile → LoadFile → LintLog against the shipped specs, with and
// without a CRIA image gating the handle checks.
func TestRunLogsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	itf := services.NotificationInterface
	m := itf.Method("enqueueNotification")
	if m == nil {
		t.Fatal("no enqueueNotification in the shipped spec")
	}
	p, err := aidl.MarshalCallArgs(m, int32(1), aidl.Object("notif"))
	if err != nil {
		t.Fatal(err)
	}
	log := record.NewLog()
	log.Append(&record.Entry{
		Seq: 1, App: "com.app", Interface: itf.Name, Method: m.Name,
		Code: m.Code, Handle: 7, Data: p.Marshal(),
	})
	logPath := filepath.Join(dir, "run.flxl")
	if err := log.SaveFile(logPath); err != nil {
		t.Fatal(err)
	}

	// Without an image the log is clean.
	fs, err := runLogs(logPath, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("clean log produced findings: %v", fs)
	}

	// An image that does not restore handle 7 turns the same entry into
	// a replay hazard.
	img := &cria.Image{
		Pkg: "com.app",
		Handles: []cria.HandleRecord{
			{Handle: 3, Kind: cria.HandleSystemService, ServiceName: "alarm", Descriptor: "IAlarmManager"},
		},
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	imgPath := filepath.Join(dir, "app.cria")
	if err := os.WriteFile(imgPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	fs, err = runLogs(logPath, imgPath, false)
	if err != nil {
		t.Fatal(err)
	}
	var hazards []vet.Finding
	for _, f := range fs {
		if f.Check == "replay-hazard" {
			hazards = append(hazards, f)
		}
	}
	if len(hazards) != 1 {
		t.Fatalf("want one replay-hazard for handle 7, got %v", fs)
	}

	// Restoring the handle clears it. (Marshal memoizes the wire bytes,
	// so build a fresh image rather than mutating the first one.)
	img2 := &cria.Image{
		Pkg: "com.app",
		Handles: append(img.Handles, cria.HandleRecord{
			Handle: binder.Handle(7), Kind: cria.HandleSystemService,
			ServiceName: "notification", Descriptor: itf.Name,
		}),
	}
	data, err = img2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(imgPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	fs, err = runLogs(logPath, imgPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("restored handle should be clean: %v", fs)
	}
}
