package main

import (
	"os"
	"path/filepath"
	"testing"

	"flux/internal/aidl"
	"flux/internal/binder"
	"flux/internal/cria"
	"flux/internal/record"
	"flux/internal/services"
	"flux/internal/vet"
)

// TestRunSpecShippedClean is the CLI-level acceptance gate: the spec layer
// over the shipped catalog, with the shipped waivers and the live proxy
// registry, reports nothing.
func TestRunSpecShippedClean(t *testing.T) {
	if fs := runSpec(); len(fs) != 0 {
		t.Fatalf("shipped specs not clean: %v", fs)
	}
}

// TestRunLogsEndToEnd exercises the persisted-log path end to end:
// SaveFile → LoadFile → LintLog against the shipped specs, with and
// without a CRIA image gating the handle checks.
func TestRunLogsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	itf := services.NotificationInterface
	m := itf.Method("enqueueNotification")
	if m == nil {
		t.Fatal("no enqueueNotification in the shipped spec")
	}
	p, err := aidl.MarshalCallArgs(m, int32(1), aidl.Object("notif"))
	if err != nil {
		t.Fatal(err)
	}
	log := record.NewLog()
	log.Append(&record.Entry{
		Seq: 1, App: "com.app", Interface: itf.Name, Method: m.Name,
		Code: m.Code, Handle: 7, Data: p.Marshal(),
	})
	logPath := filepath.Join(dir, "run.flxl")
	if err := log.SaveFile(logPath); err != nil {
		t.Fatal(err)
	}

	// Without an image the log is clean.
	fs, err := runLogs(logPath, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("clean log produced findings: %v", fs)
	}

	// An image that does not restore handle 7 turns the same entry into
	// a replay hazard.
	img := &cria.Image{
		Pkg: "com.app",
		Handles: []cria.HandleRecord{
			{Handle: 3, Kind: cria.HandleSystemService, ServiceName: "alarm", Descriptor: "IAlarmManager"},
		},
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	imgPath := filepath.Join(dir, "app.cria")
	if err := os.WriteFile(imgPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	fs, err = runLogs(logPath, imgPath, false)
	if err != nil {
		t.Fatal(err)
	}
	var hazards []vet.Finding
	for _, f := range fs {
		if f.Check == "replay-hazard" {
			hazards = append(hazards, f)
		}
	}
	if len(hazards) != 1 {
		t.Fatalf("want one replay-hazard for handle 7, got %v", fs)
	}

	// Restoring the handle clears it. (Marshal memoizes the wire bytes,
	// so build a fresh image rather than mutating the first one.)
	img2 := &cria.Image{
		Pkg: "com.app",
		Handles: append(img.Handles, cria.HandleRecord{
			Handle: binder.Handle(7), Kind: cria.HandleSystemService,
			ServiceName: "notification", Descriptor: itf.Name,
		}),
	}
	data, err = img2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(imgPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	fs, err = runLogs(logPath, imgPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("restored handle should be clean: %v", fs)
	}
}
