// Command fluxvet is the Flux replay-safety static analyzer. It runs up to
// three layers of checks (DESIGN.md §5f):
//
//	spec  — decorator-spec analysis over the compiled AIDL interfaces the
//	        services package ships: dead @drop targets, drop cycles that
//	        are not pair annihilations, lossy @if guard types, oneway
//	        methods routed through reply-dependent @replayproxy proxies,
//	        and state-mutating methods that carry no @record. Intentional
//	        deviations are waived by vet.DefaultSpecWaivers, and a waiver
//	        that stops matching surfaces as a stale-waiver finding.
//	logs  — linting of a persisted Selective Record log (-logs) against
//	        the same specs: prune/spec drift, unknown methods, sequence
//	        disorder, and (with -image) Binder handles absent from the
//	        CRIA image's handle table.
//	src   — Go source passes over the repo (-src): wall-clock calls in
//	        virtual-clock packages and map-iteration nondeterminism in
//	        deterministic output paths. //fluxvet:allow comments suppress
//	        intentional sites with a reason.
//
// Usage:
//
//	fluxvet                               # layers spec,src over the repo
//	fluxvet -layers spec                  # specs only (no source tree needed)
//	fluxvet -logs run.flxl                # + lint a persisted record log
//	fluxvet -logs run.flxl -image app.cria  # + replay-hazard handle checks
//	fluxvet -src /path/to/repo            # explicit repo root for src layer
//
// Exit status is 1 when any finding is reported, 2 on operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flux/internal/binder"
	"flux/internal/cria"
	"flux/internal/replay"
	"flux/internal/services"
	"flux/internal/vet"
)

func main() {
	var (
		layersFlag = flag.String("layers", "spec,src", "comma-separated layers to run: spec, logs, src")
		logsPath   = flag.String("logs", "", "persisted record log (.flxl) to lint; implies the logs layer")
		imagePath  = flag.String("image", "", "CRIA image whose handle table gates replay-hazard checks (requires -logs)")
		srcRoot    = flag.String("src", ".", "repository root for the src layer")
		fullRecord = flag.Bool("fullrecord", false, "log was produced by the full-record ablation: skip unrecorded-entry checks")
	)
	flag.Parse()

	layers := map[string]bool{}
	for _, l := range strings.Split(*layersFlag, ",") {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		switch l {
		case "spec", "logs", "src":
			layers[l] = true
		default:
			fmt.Fprintf(os.Stderr, "fluxvet: unknown layer %q (spec, logs, src)\n", l)
			os.Exit(2)
		}
	}
	if *logsPath != "" {
		layers["logs"] = true
	}

	var findings []vet.Finding
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fluxvet:", err)
		os.Exit(2)
	}

	if layers["spec"] {
		findings = append(findings, runSpec()...)
	}
	if layers["logs"] {
		if *logsPath == "" {
			fail(fmt.Errorf("the logs layer needs -logs <file.flxl>"))
		}
		fs, err := runLogs(*logsPath, *imagePath, *fullRecord)
		if err != nil {
			fail(err)
		}
		findings = append(findings, fs...)
	}
	if layers["src"] {
		fs, err := vet.RunSource(vet.DefaultSourceConfig(*srcRoot))
		if err != nil {
			fail(err)
		}
		findings = append(findings, fs...)
	}

	vet.Sort(findings)
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fluxvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runSpec analyzes the shipped decorator specs with the shipped waiver
// policy, resolving @replayproxy paths against the live replay engine's
// registry.
func runSpec() []vet.Finding {
	eng := replay.NewEngine()
	cfg := vet.SpecConfig{Proxies: func(path string) vet.ProxyInfo {
		registered, needsReply := eng.ProxyInfo(path)
		return vet.ProxyInfo{Registered: registered, NeedsReply: needsReply}
	}}
	var specs []vet.SpecSource
	for _, s := range services.AIDLSpecs() {
		specs = append(specs, vet.SpecSource{Service: s.Service, Itf: s.Itf})
	}
	return vet.Apply(vet.AnalyzeSpecs(specs, cfg), vet.DefaultSpecWaivers())
}

// runLogs lints a persisted record log, optionally against a CRIA image's
// handle table. Loading goes through vet.LintLogFile, so a log failing
// cryptographic verification surfaces as a log-integrity finding rather
// than a load error.
func runLogs(logsPath, imagePath string, fullRecord bool) ([]vet.Finding, error) {
	opts := vet.LogLintOptions{FullRecord: fullRecord}
	if imagePath != "" {
		data, err := os.ReadFile(imagePath)
		if err != nil {
			return nil, fmt.Errorf("loading CRIA image: %w", err)
		}
		img, err := cria.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("parsing CRIA image: %w", err)
		}
		opts.Handles = make(map[binder.Handle]bool, len(img.Handles))
		for _, h := range img.Handles {
			opts.Handles[h.Handle] = true
		}
	}
	fs, err := vet.LintLogFile(logsPath, services.InterfacesByDescriptor(), opts)
	if err != nil {
		return nil, fmt.Errorf("loading record log: %w", err)
	}
	return fs, nil
}
