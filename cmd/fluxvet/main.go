// Command fluxvet is the Flux replay-safety static analyzer. It runs up to
// three layers of checks (DESIGN.md §5f):
//
//	spec  — decorator-spec analysis over the compiled AIDL interfaces the
//	        services package ships: dead @drop targets, drop cycles that
//	        are not pair annihilations, lossy @if guard types, oneway
//	        methods routed through reply-dependent @replayproxy proxies,
//	        and state-mutating methods that carry no @record. Intentional
//	        deviations are waived by vet.DefaultSpecWaivers, and a waiver
//	        that stops matching surfaces as a stale-waiver finding.
//	logs  — linting of a persisted Selective Record log (-logs) against
//	        the same specs: prune/spec drift, unknown methods, sequence
//	        disorder, and (with -image) Binder handles absent from the
//	        CRIA image's handle table.
//	src   — the pass driver over the Go source tree (-src): named
//	        interprocedural analyses (DESIGN.md §5k) run in parallel over
//	        a package graph loaded and type-checked once. The selectable
//	        checks are wallclock and determinism-taint (wall-clock and
//	        unseeded-rand nondeterminism, propagated through the call
//	        graph via per-package facts), maprange (map-iteration order
//	        leaks), lock-order (AB/BA mutex acquisition conflicts),
//	        durability (discarded Write/Sync/Close errors and tmp+rename
//	        outside atomicio), and wire-drift (magic/header/cap/faults.Site
//	        drift across the codec packages). //fluxvet:allow comments
//	        suppress intentional sites with a reason; stale or misspelled
//	        directives become findings themselves.
//
// Usage:
//
//	fluxvet                               # layers spec,src over the repo
//	fluxvet -layers spec                  # specs only (no source tree needed)
//	fluxvet -logs run.flxl                # + lint a persisted record log
//	fluxvet -logs run.flxl -image app.cria  # + replay-hazard handle checks
//	fluxvet -src /path/to/repo            # explicit repo root for src layer
//	fluxvet -only lock-order,durability   # restrict the src layer's checks
//	fluxvet -format sarif                 # SARIF 2.1.0 for code-scanning UIs
//	fluxvet -timings                      # per-pass wall time on stderr
//
// Exit status is 1 when any finding is reported, 2 on a bad invocation or
// operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flux/internal/binder"
	"flux/internal/cria"
	"flux/internal/replay"
	"flux/internal/services"
	"flux/internal/vet"
)

func main() {
	var (
		layersFlag = flag.String("layers", "spec,src", "comma-separated layers to run: spec, logs, src")
		logsPath   = flag.String("logs", "", "persisted record log (.flxl) to lint; implies the logs layer")
		imagePath  = flag.String("image", "", "CRIA image whose handle table gates replay-hazard checks (requires -logs)")
		srcRoot    = flag.String("src", ".", "repository root for the src layer")
		fullRecord = flag.Bool("fullrecord", false, "log was produced by the full-record ablation: skip unrecorded-entry checks")
		formatFlag = flag.String("format", "text", "output format: text, json, sarif")
		onlyFlag   = flag.String("only", "", "comma-separated src-layer checks to run exclusively")
		skipFlag   = flag.String("skip", "", "comma-separated src-layer checks to skip")
		timings    = flag.Bool("timings", false, "print per-pass wall time for the src layer to stderr")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	opts, err := validateFlags(explicit, *layersFlag, *logsPath, *formatFlag, *onlyFlag, *skipFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxvet:", err)
		flag.Usage()
		os.Exit(2)
	}

	var findings []vet.Finding
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fluxvet:", err)
		os.Exit(2)
	}

	if opts.layers["spec"] {
		findings = append(findings, runSpec()...)
	}
	if opts.layers["logs"] {
		fs, err := runLogs(*logsPath, *imagePath, *fullRecord)
		if err != nil {
			fail(err)
		}
		findings = append(findings, fs...)
	}
	if opts.layers["src"] {
		fs, passTimings, err := vet.RunSourceChecks(vet.DefaultSourceConfig(*srcRoot), opts.only, opts.skip)
		if err != nil {
			fail(err)
		}
		findings = append(findings, fs...)
		if *timings {
			for _, pt := range passTimings {
				fmt.Fprintf(os.Stderr, "fluxvet: pass %-12s %8.3fs  %d package(s), %d finding(s)\n",
					pt.Pass, pt.Wall.Seconds(), pt.Packages, pt.Findings)
			}
		}
	}

	vet.Sort(findings)
	switch opts.format {
	case "json":
		os.Stdout.Write(vet.RenderJSON(findings))
	case "sarif":
		os.Stdout.Write(vet.RenderSARIF(findings))
	default:
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fluxvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// cliOptions is the validated invocation: which layers run, the output
// format, and the src-layer check selection.
type cliOptions struct {
	layers map[string]bool
	format string
	only   []string
	skip   []string
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// validateFlags checks the flag combination (set is populated by
// flag.Visit) before anything runs, so a bad invocation fails fast with
// usage instead of half-running or silently no-oping.
func validateFlags(set map[string]bool, layersFlag, logsPath, format, only, skip string) (cliOptions, error) {
	opts := cliOptions{layers: map[string]bool{}, format: format}
	for _, l := range splitList(layersFlag) {
		switch l {
		case "spec", "logs", "src":
			opts.layers[l] = true
		default:
			return opts, fmt.Errorf("unknown layer %q (spec, logs, src)", l)
		}
	}
	if logsPath != "" {
		opts.layers["logs"] = true
	}
	if opts.layers["logs"] && logsPath == "" {
		return opts, fmt.Errorf("the logs layer needs -logs <file.flxl>")
	}
	if set["image"] && !opts.layers["logs"] {
		return opts, fmt.Errorf("-image only applies with -logs")
	}
	if set["fullrecord"] && !opts.layers["logs"] {
		return opts, fmt.Errorf("-fullrecord only applies with -logs")
	}

	switch format {
	case "text", "json", "sarif":
	default:
		return opts, fmt.Errorf("unknown -format %q (text, json, sarif)", format)
	}

	opts.only, opts.skip = splitList(only), splitList(skip)
	if len(opts.only) > 0 && len(opts.skip) > 0 {
		return opts, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	for _, scoped := range []string{"only", "skip", "timings"} {
		if set[scoped] && !opts.layers["src"] {
			return opts, fmt.Errorf("-%s only applies with the src layer", scoped)
		}
	}
	known := map[string]bool{}
	for _, c := range vet.SourceCheckNames() {
		known[c] = true
	}
	for _, c := range append(append([]string(nil), opts.only...), opts.skip...) {
		if !known[c] {
			return opts, fmt.Errorf("unknown check %q (known: %s)", c, strings.Join(vet.SourceCheckNames(), ", "))
		}
	}
	return opts, nil
}

// runSpec analyzes the shipped decorator specs with the shipped waiver
// policy, resolving @replayproxy paths against the live replay engine's
// registry.
func runSpec() []vet.Finding {
	eng := replay.NewEngine()
	cfg := vet.SpecConfig{Proxies: func(path string) vet.ProxyInfo {
		registered, needsReply := eng.ProxyInfo(path)
		return vet.ProxyInfo{Registered: registered, NeedsReply: needsReply}
	}}
	var specs []vet.SpecSource
	for _, s := range services.AIDLSpecs() {
		specs = append(specs, vet.SpecSource{Service: s.Service, Itf: s.Itf})
	}
	return vet.Apply(vet.AnalyzeSpecs(specs, cfg), vet.DefaultSpecWaivers())
}

// runLogs lints a persisted record log, optionally against a CRIA image's
// handle table. Loading goes through vet.LintLogFile, so a log failing
// cryptographic verification surfaces as a log-integrity finding rather
// than a load error.
func runLogs(logsPath, imagePath string, fullRecord bool) ([]vet.Finding, error) {
	opts := vet.LogLintOptions{FullRecord: fullRecord}
	if imagePath != "" {
		data, err := os.ReadFile(imagePath)
		if err != nil {
			return nil, fmt.Errorf("loading CRIA image: %w", err)
		}
		img, err := cria.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("parsing CRIA image: %w", err)
		}
		opts.Handles = make(map[binder.Handle]bool, len(img.Handles))
		for _, h := range img.Handles {
			opts.Handles[h.Handle] = true
		}
	}
	fs, err := vet.LintLogFile(logsPath, services.InterfacesByDescriptor(), opts)
	if err != nil {
		return nil, fmt.Errorf("loading record log: %w", err)
	}
	return fs, nil
}
